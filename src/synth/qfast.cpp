#include "synth/qfast.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/faults.hpp"
#include "synth/cost.hpp"

namespace qc::synth {

QFastResult qfast_synthesize(const linalg::Matrix& target, int num_qubits,
                             const QFastOptions& options,
                             const noise::CouplingMap* coupling) {
  QC_CHECK(num_qubits >= 2 && num_qubits <= 6);
  QC_CHECK(target.rows() == (std::size_t{1} << num_qubits));
  if (common::faults::enabled() &&
      common::faults::fires(common::faults::Site::SynthFail, options.seed)) {
    throw common::SynthesisError("injected synthesis fault (qfast, seed " +
                                 std::to_string(options.seed) + ")");
  }

  std::vector<std::pair<int, int>> edges;
  if (coupling) {
    for (const auto& e : coupling->edges())
      if (e.first < num_qubits && e.second < num_qubits) edges.push_back(e);
  } else {
    for (int a = 0; a < num_qubits; ++a)
      for (int b = a + 1; b < num_qubits; ++b) edges.emplace_back(a, b);
  }
  QC_CHECK_MSG(!edges.empty(), "no usable edges for synthesis");

  common::Rng rng(options.seed);
  QFastResult result;

  std::vector<double> warm;  // parameters carried across depths
  for (int depth = 1; depth <= options.max_blocks; ++depth) {
    if (options.deadline.expired()) {
      result.timed_out = true;
      break;
    }
    ++result.depths_tried;

    TemplateCircuit tpl(num_qubits);
    for (int d = 0; d < depth; ++d) {
      const auto& e = edges[static_cast<std::size_t>(d) % edges.size()];
      tpl.add_generic_block(e.first, e.second);
    }
    const HsCost cost(tpl, target);
    const CostFn f = [&cost](const std::vector<double>& x) { return cost(x); };
    const GradFn g = [&cost](const std::vector<double>& x, std::vector<double>& out) {
      cost.gradient(x, out);
    };

    std::vector<double> x0 = warm;
    x0.resize(static_cast<std::size_t>(tpl.num_params()), 0.0);

    // Optionally surface a cheap coarse pass first (short optimization) —
    // these are the "circuits it checks along the way".
    if (options.emit_coarse_passes && options.partial_solution_callback) {
      OptimizeOptions coarse = options.optimizer;
      coarse.deadline = options.deadline;
      coarse.max_iterations = std::max(5, options.optimizer.max_iterations / 6);
      const OptimizeResult quick = lbfgs_minimize(f, g, x0, coarse);
      ApproxCircuit snap{tpl.instantiate(quick.params),
                         cost_to_hs_distance(quick.value), tpl.cx_count(), "qfast"};
      options.partial_solution_callback(snap);
      x0 = quick.params;
    }

    MultistartOptions ms;
    ms.inner = options.optimizer;
    ms.inner.deadline = options.deadline;  // per-iteration polling inside
    ms.num_starts = options.restarts_per_depth;
    common::Rng depth_rng = rng.split(static_cast<std::uint64_t>(depth));
    const OptimizeResult opt = multistart_minimize(f, g, x0, depth_rng, ms);
    warm = opt.params;

    ApproxCircuit record{tpl.instantiate(opt.params), cost_to_hs_distance(opt.value),
                         tpl.cx_count(), "qfast"};
    if (options.partial_solution_callback) options.partial_solution_callback(record);

    const bool better = result.best.circuit.is_null() ||
                        record.hs_distance < result.best.hs_distance;
    if (better) result.best = std::move(record);

    if (result.best.hs_distance < options.success_threshold) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace qc::synth
