#include "synth/qsearch.hpp"

#include <algorithm>
#include <queue>

#include "common/error.hpp"
#include "common/faults.hpp"
#include "obs/obs.hpp"
#include "synth/cost.hpp"

namespace qc::synth {

namespace {

struct Node {
  std::vector<std::pair<int, int>> blocks;  // CX edges, in order
  std::vector<double> params;               // optimized parameters
  double hs = 1.0;
  double priority = 0.0;
  std::uint64_t order = 0;  // insertion index: deterministic tie-break

  bool operator<(const Node& rhs) const {
    // std::priority_queue is a max-heap; invert for min-priority.
    if (priority != rhs.priority) return priority > rhs.priority;
    return order > rhs.order;
  }
};

TemplateCircuit build_template(int num_qubits,
                               const std::vector<std::pair<int, int>>& blocks) {
  TemplateCircuit tpl = TemplateCircuit::u3_layer(num_qubits);
  for (const auto& [a, b] : blocks) tpl.add_qsearch_block(a, b);
  return tpl;
}

}  // namespace

QSearchResult qsearch_synthesize(const linalg::Matrix& target, int num_qubits,
                                 const QSearchOptions& options,
                                 const noise::CouplingMap* coupling) {
  QC_CHECK(num_qubits >= 2 && num_qubits <= 6);
  QC_CHECK(target.rows() == (std::size_t{1} << num_qubits));
  if (common::faults::enabled() &&
      common::faults::fires(common::faults::Site::SynthFail, options.seed)) {
    throw common::SynthesisError("injected synthesis fault (qsearch, seed " +
                                 std::to_string(options.seed) + ")");
  }

  // Expansion edges: coupling-map edges, or all pairs. Both CX directions
  // are equivalent up to the surrounding U3s, so one orientation suffices.
  std::vector<std::pair<int, int>> edges;
  if (coupling) {
    QC_CHECK(coupling->num_qubits() >= num_qubits);
    for (const auto& e : coupling->edges())
      if (e.first < num_qubits && e.second < num_qubits) edges.push_back(e);
  } else {
    for (int a = 0; a < num_qubits; ++a)
      for (int b = a + 1; b < num_qubits; ++b) edges.emplace_back(a, b);
  }
  QC_CHECK_MSG(!edges.empty(), "no usable edges for synthesis");

  common::Rng rng(options.seed);
  QSearchResult result;
  std::uint64_t insert_counter = 0;

  static obs::Histogram& search_ns = obs::histogram("synth.qsearch_ns");
  obs::Span span("synth.qsearch", &search_ns);
  // Tally on every exit path (the search returns from inside the expansion
  // loop on convergence). Destroyed before `span`, so the args land on it.
  struct Tally {
    QSearchResult& r;
    obs::Span& s;
    ~Tally() {
      static obs::Counter& expanded = obs::counter("synth.qsearch.nodes_expanded");
      static obs::Counter& optimized = obs::counter("synth.qsearch.nodes_optimized");
      expanded.add(r.nodes_expanded);
      optimized.add(r.nodes_optimized);
      if (s.active()) {
        s.arg("nodes_expanded", r.nodes_expanded);
        s.arg("nodes_optimized", r.nodes_optimized);
        s.arg("best_hs", r.best.hs_distance);
        s.arg("converged", static_cast<int>(r.converged));
      }
    }
  } tally{result, span};

  auto optimize_node = [&](Node& node) {
    const TemplateCircuit tpl = build_template(num_qubits, node.blocks);
    const HsCost cost(tpl, target);
    const CostFn f = [&cost](const std::vector<double>& x) { return cost(x); };
    const GradFn g = [&cost](const std::vector<double>& x, std::vector<double>& out) {
      cost.gradient(x, out);
    };

    // Warm start: parent parameters extended with identity angles for the
    // new block (node.params may already hold them).
    std::vector<double> x0 = node.params;
    x0.resize(static_cast<std::size_t>(tpl.num_params()), 0.0);

    MultistartOptions ms;
    ms.inner = options.optimizer;
    ms.inner.deadline = options.deadline;  // per-iteration polling inside
    ms.num_starts = options.restarts_per_node;
    common::Rng node_rng = rng.split(insert_counter + 1);
    const OptimizeResult opt = multistart_minimize(f, g, x0, node_rng, ms);

    node.params = opt.params;
    node.hs = cost_to_hs_distance(opt.value);
    node.priority = node.hs + options.depth_weight * static_cast<double>(node.blocks.size());
    ++result.nodes_optimized;

    ApproxCircuit record{tpl.instantiate(node.params), node.hs, tpl.cx_count(),
                         "qsearch"};
    if (options.intermediate_callback) options.intermediate_callback(record);

    const bool better =
        result.best.circuit.is_null() || node.hs < result.best.hs_distance ||
        (node.hs == result.best.hs_distance && tpl.cx_count() < result.best.cnot_count);
    if (better) result.best = std::move(record);
  };

  std::priority_queue<Node> open;
  Node root;
  root.order = insert_counter++;
  optimize_node(root);
  open.push(std::move(root));

  while (!open.empty()) {
    if (result.best.hs_distance < options.success_threshold) break;
    if (result.nodes_expanded >= options.max_nodes) break;
    if (options.deadline.expired()) {
      result.timed_out = true;
      break;
    }

    Node current = open.top();
    open.pop();
    ++result.nodes_expanded;
    if (static_cast<int>(current.blocks.size()) >= options.max_cnots) continue;

    for (const auto& edge : edges) {
      // Each child costs a full continuous optimization, so poll here too —
      // the response to expiry stays within one node's optimization budget.
      if (options.deadline.expired()) {
        result.timed_out = true;
        break;
      }
      Node child;
      child.blocks = current.blocks;
      child.blocks.push_back(edge);
      child.params = current.params;  // warm start; extended in optimize_node
      child.order = insert_counter++;
      optimize_node(child);
      if (child.hs < options.success_threshold) {
        result.converged = true;
        return result;
      }
      open.push(std::move(child));
    }
    if (result.timed_out) break;
  }

  result.converged = result.best.hs_distance < options.success_threshold;
  return result;
}

}  // namespace qc::synth
