#include "synth/qsearch.hpp"

#include <algorithm>
#include <bit>
#include <queue>

#include "common/error.hpp"
#include "common/faults.hpp"
#include "common/strings.hpp"
#include "obs/obs.hpp"
#include "synth/cache.hpp"
#include "synth/cost.hpp"

namespace qc::synth {

bool synth_parallel_default() {
  static const bool enabled = common::env_flag("QAPPROX_SYNTH_PARALLEL", true);
  return enabled;
}

namespace {

struct Node {
  std::vector<std::pair<int, int>> blocks;  // CX edges, in order
  std::vector<double> params;               // optimized parameters
  double hs = 1.0;
  double priority = 0.0;
  std::uint64_t order = 0;  // insertion index: deterministic tie-break

  bool operator<(const Node& rhs) const {
    // std::priority_queue is a max-heap; invert for min-priority.
    if (priority != rhs.priority) return priority > rhs.priority;
    return order > rhs.order;
  }
};

TemplateCircuit build_template(int num_qubits,
                               const std::vector<std::pair<int, int>>& blocks) {
  TemplateCircuit tpl = TemplateCircuit::u3_layer(num_qubits);
  for (const auto& [a, b] : blocks) tpl.add_qsearch_block(a, b);
  return tpl;
}

QSearchCacheKey make_cache_key(const linalg::Matrix& target, int num_qubits,
                               const QSearchOptions& options,
                               const std::vector<std::pair<int, int>>& edges) {
  QSearchCacheKey key;
  key.target_fp = target.fingerprint();
  key.dim = target.rows();
  key.num_qubits = num_qubits;
  key.edges = edges;
  key.success_threshold_bits = std::bit_cast<std::uint64_t>(options.success_threshold);
  key.depth_weight_bits = std::bit_cast<std::uint64_t>(options.depth_weight);
  key.opt_tolerance_bits = std::bit_cast<std::uint64_t>(options.optimizer.tolerance);
  key.max_cnots = options.max_cnots;
  key.max_nodes = options.max_nodes;
  key.opt_max_iterations = options.optimizer.max_iterations;
  key.opt_lbfgs_memory = options.optimizer.lbfgs_memory;
  key.restarts_per_node = options.restarts_per_node;
  key.seed = options.seed;
  key.gradient_mode = static_cast<int>(default_gradient_mode());
  return key;
}

/// The search proper; `stream` records every intermediate the callback saw
/// (also recorded when there is no callback, so the run can be cached).
QSearchResult run_qsearch(const linalg::Matrix& target, int num_qubits,
                          const QSearchOptions& options,
                          const std::vector<std::pair<int, int>>& edges,
                          std::vector<ApproxCircuit>& stream) {
  common::Rng rng(options.seed);
  QSearchResult result;
  std::uint64_t insert_counter = 0;

  static obs::Histogram& search_ns = obs::histogram("synth.qsearch_ns");
  obs::Span span("synth.qsearch", &search_ns);
  // Tally on every exit path (the search returns from inside the expansion
  // loop on convergence). Destroyed before `span`, so the args land on it.
  struct Tally {
    QSearchResult& r;
    obs::Span& s;
    ~Tally() {
      static obs::Counter& expanded = obs::counter("synth.qsearch.nodes_expanded");
      static obs::Counter& optimized = obs::counter("synth.qsearch.nodes_optimized");
      expanded.add(r.nodes_expanded);
      optimized.add(r.nodes_optimized);
      if (s.active()) {
        s.arg("nodes_expanded", r.nodes_expanded);
        s.arg("nodes_optimized", r.nodes_optimized);
        s.arg("best_hs", r.best.hs_distance);
        s.arg("converged", static_cast<int>(r.converged));
      }
    }
  } tally{result, span};

  // Pure per-node optimization: touches only `node` and `record`, so any
  // number of nodes can run concurrently. The RNG stream depends only on
  // (options.seed, node.order), preserving the serial schedule's streams
  // (the serial code split at insert_counter + 1 == order + 2).
  auto optimize_node = [&](Node& node, ApproxCircuit& record) {
    const TemplateCircuit tpl = build_template(num_qubits, node.blocks);
    const HsCost cost(tpl, target);
    const CostFn f = [&cost](const std::vector<double>& x) { return cost(x); };
    const GradFn g = [&cost](const std::vector<double>& x, std::vector<double>& out) {
      cost.gradient(x, out);
    };

    // Warm start: parent parameters extended with identity angles for the
    // new block (node.params may already hold them).
    std::vector<double> x0 = node.params;
    x0.resize(static_cast<std::size_t>(tpl.num_params()), 0.0);

    MultistartOptions ms;
    ms.inner = options.optimizer;
    ms.inner.deadline = options.deadline;  // per-iteration polling inside
    ms.num_starts = options.restarts_per_node;
    common::Rng node_rng = rng.split(node.order + 2);
    const OptimizeResult opt = multistart_minimize(f, g, x0, node_rng, ms);

    node.params = opt.params;
    node.hs = cost_to_hs_distance(opt.value);
    node.priority = node.hs + options.depth_weight * static_cast<double>(node.blocks.size());
    record = ApproxCircuit{tpl.instantiate(node.params), node.hs, tpl.cx_count(),
                           "qsearch"};
  };

  // Sequential bookkeeping for one optimized node: counters, the
  // intermediate stream, and the best-so-far update, in the exact order the
  // serial schedule performs them.
  auto merge_node = [&](const Node& node, ApproxCircuit& record) {
    ++result.nodes_optimized;
    stream.push_back(record);
    if (options.intermediate_callback) options.intermediate_callback(record);
    const bool better =
        result.best.circuit.is_null() || node.hs < result.best.hs_distance ||
        (node.hs == result.best.hs_distance && record.cnot_count < result.best.cnot_count);
    if (better) result.best = std::move(record);
  };

  std::priority_queue<Node> open;
  Node root;
  root.order = insert_counter++;
  ApproxCircuit root_record;
  optimize_node(root, root_record);
  merge_node(root, root_record);
  open.push(std::move(root));

  struct PendingChild {
    Node node;
    ApproxCircuit record;
  };
  std::vector<PendingChild> children;

  common::ThreadPool* pool = options.pool;
  static obs::Counter& parallel_children_counter =
      obs::counter("synth.qsearch.children_parallel");

  while (!open.empty()) {
    if (result.best.hs_distance < options.success_threshold) break;
    if (result.nodes_expanded >= options.max_nodes) break;
    if (options.deadline.expired()) {
      result.timed_out = true;
      break;
    }

    Node current = open.top();
    open.pop();
    ++result.nodes_expanded;
    if (static_cast<int>(current.blocks.size()) >= options.max_cnots) continue;

    // Frontier expansion in two phases. Phase 1 optimizes every child —
    // concurrently when enabled; each child is a pure function of
    // (parent, edge, order). Phase 2 merges sequentially in edge order,
    // reproducing the serial schedule bit for bit: deadline expiry and
    // convergence cut the merge at the same position the serial loop would
    // have stopped at, and later children are simply discarded.
    children.clear();
    children.resize(edges.size());
    for (std::size_t i = 0; i < edges.size(); ++i) {
      Node& child = children[i].node;
      child.blocks = current.blocks;
      child.blocks.push_back(edges[i]);
      child.params = current.params;  // warm start; extended in optimize_node
      child.order = insert_counter++;
    }
    const bool parallel = options.parallel_children && children.size() > 1;
    if (parallel) {
      if (pool == nullptr) pool = &common::ThreadPool::global();
      pool->parallel_for(0, children.size(), [&](std::size_t i) {
        optimize_node(children[i].node, children[i].record);
      });
      parallel_children_counter.add(children.size());
    } else {
      for (auto& child : children) optimize_node(child.node, child.record);
    }

    for (auto& child : children) {
      // The serial schedule polls before each child's optimization; merging
      // at the same granularity keeps the response within one node's budget.
      if (options.deadline.expired()) {
        result.timed_out = true;
        break;
      }
      merge_node(child.node, child.record);
      if (child.node.hs < options.success_threshold) {
        result.converged = true;
        return result;
      }
      open.push(std::move(child.node));
    }
    if (result.timed_out) break;
  }

  result.converged = result.best.hs_distance < options.success_threshold;
  return result;
}

}  // namespace

QSearchResult qsearch_synthesize(const linalg::Matrix& target, int num_qubits,
                                 const QSearchOptions& options,
                                 const noise::CouplingMap* coupling) {
  QC_CHECK(num_qubits >= 2 && num_qubits <= 6);
  QC_CHECK(target.rows() == (std::size_t{1} << num_qubits));
  // Fault injection precedes the cache: an armed fault fires whether or not
  // the result is memoized.
  if (common::faults::enabled() &&
      common::faults::fires(common::faults::Site::SynthFail, options.seed)) {
    throw common::SynthesisError("injected synthesis fault (qsearch, seed " +
                                 std::to_string(options.seed) + ")");
  }

  // Expansion edges: coupling-map edges, or all pairs. Both CX directions
  // are equivalent up to the surrounding U3s, so one orientation suffices.
  std::vector<std::pair<int, int>> edges;
  if (coupling) {
    QC_CHECK(coupling->num_qubits() >= num_qubits);
    for (const auto& e : coupling->edges())
      if (e.first < num_qubits && e.second < num_qubits) edges.push_back(e);
  } else {
    for (int a = 0; a < num_qubits; ++a)
      for (int b = a + 1; b < num_qubits; ++b) edges.emplace_back(a, b);
  }
  QC_CHECK_MSG(!edges.empty(), "no usable edges for synthesis");

  if (!options.use_cache) {
    std::vector<ApproxCircuit> stream;
    return run_qsearch(target, num_qubits, options, edges, stream);
  }

  const QSearchCacheKey key = make_cache_key(target, num_qubits, options, edges);
  if (auto hit = synth_cache_lookup(key)) {
    if (options.intermediate_callback)
      for (const ApproxCircuit& record : hit->stream)
        options.intermediate_callback(record);
    return std::move(hit->result);
  }

  CachedQSearch entry;
  entry.result = run_qsearch(target, num_qubits, options, edges, entry.stream);
  // A timed-out run is a truncated search, not *the* result for this key.
  if (!entry.result.timed_out) {
    QSearchResult result = entry.result;
    synth_cache_store(key, std::move(entry));
    return result;
  }
  return entry.result;
}

}  // namespace qc::synth
