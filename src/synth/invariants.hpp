// Two-qubit circuit-structure invariants (Makhlin; Shende-Bullock-Markov).
//
// In the magic basis, gamma(U) = M^T M (with M = B† U B, U normalized into
// SU(4)) is invariant under local gates, and its trace classifies how many
// CNOTs a two-qubit unitary *requires*:
//
//   0 CNOTs  iff  |tr gamma| = 4            (U is local)
//   1 CNOT   iff  tr gamma = 0 and gamma^2 = -I
//   2 CNOTs  iff  tr gamma is real (for some SU(4) phase choice)
//   3 CNOTs  otherwise (every U(4) element needs at most 3)
//
// This gives synthesis an analytic optimality certificate: when QSearch
// finds a k-CNOT circuit and minimal_cx_count(target) == k, the search is
// provably depth-optimal; and partitioned resynthesis can skip blocks that
// already sit at their lower bound.
#pragma once

#include "linalg/matrix.hpp"

namespace qc::synth {

/// gamma(U) = (B† U' B)^T (B† U' B) with U' = U / det(U)^{1/4} — defined up
/// to the 4th-root phase, which the classification functions handle.
linalg::Matrix gamma_invariant(const linalg::Matrix& u);

/// Minimal number of CNOTs (0-3) required to implement the 4x4 unitary `u`
/// exactly with CNOTs + single-qubit gates.
int minimal_cx_count(const linalg::Matrix& u, double tol = 1e-9);

}  // namespace qc::synth
