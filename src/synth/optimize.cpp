#include "synth/optimize.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numbers>

#include "common/error.hpp"

namespace qc::synth {

OptimizeResult lbfgs_minimize(const CostFn& f, const GradFn& grad,
                              const std::vector<double>& x0,
                              const OptimizeOptions& options) {
  QC_CHECK(!x0.empty());
  const std::size_t n = x0.size();

  OptimizeResult result;
  result.params = x0;
  result.value = f(x0);
  ++result.evaluations;

  std::vector<double> x = x0;
  std::vector<double> g(n);
  grad(x, g);

  // History of (s, y, rho) for the two-loop recursion.
  std::deque<std::vector<double>> s_hist, y_hist;
  std::deque<double> rho_hist;

  std::vector<double> direction(n), x_new(n), g_new(n), q(n);

  common::StopPoller poller(options.deadline, /*stride=*/1);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    if (poller.should_stop()) break;
    ++result.iterations;

    double gnorm = 0.0;
    for (double v : g) gnorm += v * v;
    gnorm = std::sqrt(gnorm);
    if (gnorm < options.tolerance) break;

    // Two-loop recursion: direction = -H g.
    q = g;
    std::vector<double> alpha(s_hist.size());
    for (std::size_t i = s_hist.size(); i-- > 0;) {
      double dot = 0.0;
      for (std::size_t k = 0; k < n; ++k) dot += s_hist[i][k] * q[k];
      alpha[i] = rho_hist[i] * dot;
      for (std::size_t k = 0; k < n; ++k) q[k] -= alpha[i] * y_hist[i][k];
    }
    double gamma = 1.0;
    if (!s_hist.empty()) {
      double sy = 0.0, yy = 0.0;
      const auto& s = s_hist.back();
      const auto& y = y_hist.back();
      for (std::size_t k = 0; k < n; ++k) {
        sy += s[k] * y[k];
        yy += y[k] * y[k];
      }
      if (yy > 1e-300) gamma = sy / yy;
    }
    for (std::size_t k = 0; k < n; ++k) q[k] *= gamma;
    for (std::size_t i = 0; i < s_hist.size(); ++i) {
      double dot = 0.0;
      for (std::size_t k = 0; k < n; ++k) dot += y_hist[i][k] * q[k];
      const double beta = rho_hist[i] * dot;
      for (std::size_t k = 0; k < n; ++k) q[k] += s_hist[i][k] * (alpha[i] - beta);
    }
    for (std::size_t k = 0; k < n; ++k) direction[k] = -q[k];

    // Descent check; fall back to steepest descent if the model went bad.
    double dir_dot_g = 0.0;
    for (std::size_t k = 0; k < n; ++k) dir_dot_g += direction[k] * g[k];
    if (dir_dot_g >= 0.0) {
      for (std::size_t k = 0; k < n; ++k) direction[k] = -g[k];
      dir_dot_g = -gnorm * gnorm;
    }

    // Armijo backtracking.
    const double f0 = result.value;
    double step = 1.0;
    constexpr double c1 = 1e-4;
    bool accepted = false;
    for (int ls = 0; ls < 30; ++ls) {
      for (std::size_t k = 0; k < n; ++k) x_new[k] = x[k] + step * direction[k];
      const double f_new = f(x_new);
      ++result.evaluations;
      if (f_new <= f0 + c1 * step * dir_dot_g) {
        accepted = true;
        result.value = f_new;
        break;
      }
      step *= 0.5;
    }
    if (!accepted) break;  // no progress possible along this direction

    grad(x_new, g_new);

    std::vector<double> s(n), y(n);
    double sy = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      s[k] = x_new[k] - x[k];
      y[k] = g_new[k] - g[k];
      sy += s[k] * y[k];
    }
    if (sy > 1e-12) {
      s_hist.push_back(std::move(s));
      y_hist.push_back(std::move(y));
      rho_hist.push_back(1.0 / sy);
      if (static_cast<int>(s_hist.size()) > options.lbfgs_memory) {
        s_hist.pop_front();
        y_hist.pop_front();
        rho_hist.pop_front();
      }
    }
    const double improvement = f0 - result.value;
    x.swap(x_new);
    g.swap(g_new);
    if (improvement >= 0.0 && improvement < options.tolerance && iter > 4) break;
  }
  result.params = x;
  return result;
}

OptimizeResult nelder_mead_minimize(const CostFn& f, const std::vector<double>& x0,
                                    const OptimizeOptions& options) {
  QC_CHECK(!x0.empty());
  const std::size_t n = x0.size();
  constexpr double alpha = 1.0, gamma = 2.0, rho = 0.5, sigma = 0.5;

  OptimizeResult result;

  // Initial simplex: x0 plus unit-coordinate offsets of 0.25 rad.
  std::vector<std::vector<double>> pts(n + 1, x0);
  std::vector<double> vals(n + 1);
  for (std::size_t i = 1; i <= n; ++i) pts[i][i - 1] += 0.25;
  for (std::size_t i = 0; i <= n; ++i) {
    vals[i] = f(pts[i]);
    ++result.evaluations;
  }

  std::vector<std::size_t> order(n + 1);
  std::vector<double> centroid(n), probe(n);

  // Nelder-Mead needs many more iterations than quasi-Newton per dimension.
  const int max_iter = options.max_iterations * static_cast<int>(n);
  common::StopPoller poller(options.deadline, /*stride=*/4);
  for (int iter = 0; iter < max_iter; ++iter) {
    if (poller.should_stop()) break;
    ++result.iterations;
    for (std::size_t i = 0; i <= n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return vals[a] < vals[b]; });

    if (vals[order[0]] < options.tolerance ||
        vals[order[n]] - vals[order[0]] < options.tolerance)
      break;

    std::fill(centroid.begin(), centroid.end(), 0.0);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t k = 0; k < n; ++k) centroid[k] += pts[order[i]][k];
    for (double& c : centroid) c /= static_cast<double>(n);

    const std::size_t worst = order[n];
    auto eval_probe = [&](double coeff) {
      for (std::size_t k = 0; k < n; ++k)
        probe[k] = centroid[k] + coeff * (pts[worst][k] - centroid[k]);
      ++result.evaluations;
      return f(probe);
    };

    const double f_best = vals[order[0]];
    const double f_second_worst = vals[order[n - 1]];
    const double f_reflect = eval_probe(-alpha);
    if (f_reflect < f_best) {
      const std::vector<double> reflected = probe;
      const double f_expand = eval_probe(-alpha * gamma);
      if (f_expand < f_reflect) {
        pts[worst] = probe;
        vals[worst] = f_expand;
      } else {
        pts[worst] = reflected;
        vals[worst] = f_reflect;
      }
    } else if (f_reflect < f_second_worst) {
      pts[worst] = probe;
      vals[worst] = f_reflect;
    } else {
      const double f_contract = eval_probe(f_reflect < vals[worst] ? -rho : rho);
      if (f_contract < std::min(f_reflect, vals[worst])) {
        pts[worst] = probe;
        vals[worst] = f_contract;
      } else {
        // Shrink toward the best vertex.
        const auto& best_pt = pts[order[0]];
        for (std::size_t i = 0; i <= n; ++i) {
          if (i == order[0]) continue;
          for (std::size_t k = 0; k < n; ++k)
            pts[i][k] = best_pt[k] + sigma * (pts[i][k] - best_pt[k]);
          vals[i] = f(pts[i]);
          ++result.evaluations;
        }
      }
    }
  }

  std::size_t best = 0;
  for (std::size_t i = 1; i <= n; ++i)
    if (vals[i] < vals[best]) best = i;
  result.params = pts[best];
  result.value = vals[best];
  return result;
}

OptimizeResult multistart_minimize(const CostFn& f, const GradFn& grad,
                                   const std::vector<double>& x0, common::Rng& rng,
                                   const MultistartOptions& options) {
  QC_CHECK(options.num_starts >= 1);
  OptimizeResult best;
  bool have_best = false;

  for (int start = 0; start < options.num_starts; ++start) {
    // Stop between restarts too; started restarts stop via the inner poll.
    if (have_best && options.inner.deadline.expired()) break;
    std::vector<double> x = x0;
    if (start > 0) {
      for (double& v : x) v = rng.uniform(-std::numbers::pi, std::numbers::pi);
    }
    OptimizeResult r = options.use_nelder_mead
                           ? nelder_mead_minimize(f, x, options.inner)
                           : lbfgs_minimize(f, grad, x, options.inner);
    if (!have_best || r.value < best.value) {
      r.evaluations += have_best ? best.evaluations : 0;
      best = std::move(r);
      have_best = true;
    } else {
      best.evaluations += r.evaluations;
    }
    if (best.value <= options.good_enough) break;
  }
  return best;
}

}  // namespace qc::synth
