// Synthesis cost functions.
//
// The objective is the smooth fidelity gap
//     f(x) = 1 - |Tr(T† V(x))| / d
// whose zero set coincides with hs_distance = 0; hs_distance follows as
// sqrt(f (1 + |Tr|/d)) = sqrt(1 - (1-f)^2).
//
// Gradients come in two flavors. The analytic mode (default) computes all P
// partials in one forward/backward partial-product sweep — O(m·dim²), about
// two unitary builds regardless of P — by writing W = Tr(T† V) and, for the
// U3 at slot k,  ∂W = Tr(L_k · S_{k+1} · ∂O_k)  with the prefix product
// L_k = O_{k-1}···O_0 · T† maintained by row ops and the suffix products
// S_{k+1} = O_{m-1}···O_{k+1} precomputed by column ops. The
// central-difference mode (2·P unitary builds) is kept as the test oracle
// and as the QAPPROX_SYNTH_GRAD=fd kill switch.
#pragma once

#include <memory>
#include <vector>

#include "linalg/matrix.hpp"
#include "synth/template.hpp"

namespace qc::synth {

enum class GradientMode { kAnalytic, kFiniteDifference };

/// Process default: analytic unless QAPPROX_SYNTH_GRAD=fd (also accepts
/// 0/off/false/no). Read once; tests that need both modes in one process use
/// HsCost::set_gradient_mode instead.
GradientMode default_gradient_mode();

class HsCost {
 public:
  /// Borrows `target`; the caller keeps it alive for the cost's lifetime.
  /// Searches build one cost per explored node against the same target, so
  /// borrowing avoids a dim² copy (and allocation) per node.
  HsCost(const TemplateCircuit& tpl, const linalg::Matrix& target);
  /// Takes ownership of a temporary target (benchmarks, one-off callers).
  HsCost(const TemplateCircuit& tpl, linalg::Matrix&& target);

  int dim() const { return static_cast<int>(target_->rows()); }
  int num_params() const { return tpl_.num_params(); }

  /// 1 - |Tr(T† V(x))| / d, in [0, 1].
  double operator()(const std::vector<double>& params) const;

  /// HS distance at x: sqrt(1 - (1 - f)^2).
  double hs_distance(const std::vector<double>& params) const;

  /// Gradient in the active mode (records synth.gradient_ns when timing is
  /// armed).
  void gradient(const std::vector<double>& params, std::vector<double>& grad) const;

  /// Closed-form gradient via the partial-product sweep.
  void gradient_analytic(const std::vector<double>& params,
                         std::vector<double>& grad) const;
  /// Central-difference gradient (step 1e-6 radians); the oracle.
  void gradient_finite_difference(const std::vector<double>& params,
                                  std::vector<double>& grad) const;

  GradientMode gradient_mode() const { return mode_; }
  void set_gradient_mode(GradientMode mode) { mode_ = mode; }

  const TemplateCircuit& circuit_template() const { return tpl_; }
  const linalg::Matrix& target() const { return *target_; }

 private:
  TemplateCircuit tpl_;
  std::shared_ptr<const linalg::Matrix> owned_;  // null when borrowing
  const linalg::Matrix* target_;
  GradientMode mode_ = default_gradient_mode();
  mutable linalg::Matrix scratch_;
  // Analytic-sweep scratch, reused across calls to keep the hot path
  // allocation-free after warm-up.
  mutable linalg::Matrix prefix_;
  mutable std::vector<linalg::Matrix> suffix_;
};

/// Converts a smooth cost value to the HS distance it implies.
double cost_to_hs_distance(double cost);

}  // namespace qc::synth
