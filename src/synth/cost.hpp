// Synthesis cost functions.
//
// The objective is the smooth fidelity gap
//     f(x) = 1 - |Tr(T† V(x))| / d
// whose zero set coincides with hs_distance = 0; hs_distance follows as
// sqrt(f (1 + |Tr|/d)) = sqrt(1 - (1-f)^2). Gradients are central-difference
// numerical (the template rebuild is cheap by construction).
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "synth/template.hpp"

namespace qc::synth {

class HsCost {
 public:
  HsCost(const TemplateCircuit& tpl, linalg::Matrix target);

  int dim() const { return static_cast<int>(target_.rows()); }
  int num_params() const { return tpl_.num_params(); }

  /// 1 - |Tr(T† V(x))| / d, in [0, 1].
  double operator()(const std::vector<double>& params) const;

  /// HS distance at x: sqrt(1 - (1 - f)^2).
  double hs_distance(const std::vector<double>& params) const;

  /// Central-difference gradient (step 1e-6 radians).
  void gradient(const std::vector<double>& params, std::vector<double>& grad) const;

  const TemplateCircuit& circuit_template() const { return tpl_; }
  const linalg::Matrix& target() const { return target_; }

 private:
  TemplateCircuit tpl_;
  linalg::Matrix target_;
  mutable linalg::Matrix scratch_;
};

/// Converts a smooth cost value to the HS distance it implies.
double cost_to_hs_distance(double cost);

}  // namespace qc::synth
