// QSearch-style optimal-depth synthesis, instrumented.
//
// Faithful to the search the paper modified: an A*-style best-first search
// over circuit structures, starting from a U3 layer and expanding by one
// {CNOT + U3 + U3} block per step on a coupling-map edge; each structure's
// continuous parameters are optimized numerically against the target's
// Hilbert–Schmidt cost before scoring.
//
// The paper's enhancement is built in rather than patched in: every
// intermediate structure the search optimizes is reported through
// `intermediate_callback` with its bound circuit and HS distance — that
// stream *is* the set of approximate circuits the study evaluates.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "ir/circuit.hpp"
#include "linalg/matrix.hpp"
#include "noise/topology.hpp"
#include "synth/optimize.hpp"

namespace qc::synth {

/// Process default for QSearchOptions::parallel_children:
/// QAPPROX_SYNTH_PARALLEL (default on).
bool synth_parallel_default();

/// Process default for the `use_cache` option fields: QAPPROX_SYNTH_CACHE
/// (default on). Defined with the cache in cache.cpp.
bool synth_cache_enabled();

/// One synthesized (possibly approximate) circuit.
struct ApproxCircuit {
  ir::QuantumCircuit circuit;
  double hs_distance = 1.0;
  std::size_t cnot_count = 0;
  std::string source;  // "qsearch", "qfast", "reducer"
};

using IntermediateCallback = std::function<void(const ApproxCircuit&)>;

struct QSearchOptions {
  /// Search succeeds when the HS distance drops below this. The original
  /// tool's "distance zero" default of 1e-10 is stated on its *fidelity gap*
  /// scale; on the hs = sqrt(1 - f^2) scale used here that corresponds to
  /// hs ~ sqrt(2e-10), and double precision floors hs near 1e-8 — so the
  /// practical zero is 1e-5 (fidelity gap ~5e-11).
  double success_threshold = 1e-5;
  /// Hard caps keeping the search bounded.
  int max_cnots = 8;
  int max_nodes = 120;
  /// A* priority = hs_distance + depth_weight * cnot_count; small weight
  /// preserves near-depth-optimality while pruning hopeless deep branches.
  double depth_weight = 0.0125;
  /// Continuous optimization budget per node.
  OptimizeOptions optimizer;
  int restarts_per_node = 2;
  std::uint64_t seed = 0x51534541;  // deterministic searches
  /// Report every optimized structure (the paper's modification).
  IntermediateCallback intermediate_callback;
  /// Polled at every node expansion and inside each node's optimization; on
  /// expiry the search returns its best circuit so far flagged `timed_out`.
  common::Deadline deadline;
  /// Optimize all children of a popped node concurrently on the thread pool.
  /// Results are bit-identical to the serial schedule (children are merged
  /// sequentially in edge order; see DESIGN.md §10).
  bool parallel_children = synth_parallel_default();
  /// Memoize the whole search on (target, edges, options, seed); repeated
  /// calls replay the recorded intermediate stream and return the first
  /// run's result. Timed-out runs are never cached.
  bool use_cache = synth_cache_enabled();
  /// Pool for parallel_children; null means ThreadPool::global(). Tests pin
  /// explicit sizes here (QAPPROX_THREADS is read once per process).
  common::ThreadPool* pool = nullptr;
};

struct QSearchResult {
  /// Best circuit found (lowest HS distance; ties broken by CNOT count).
  ApproxCircuit best;
  /// True if best.hs_distance < success_threshold.
  bool converged = false;
  int nodes_expanded = 0;
  int nodes_optimized = 0;
  /// True when the deadline cut the search short; `best` is still the best
  /// structure optimized before expiry.
  bool timed_out = false;
};

/// Synthesizes `target` over `num_qubits` qubits. If `coupling` is given,
/// expansion blocks are restricted to its edges (machine-aware synthesis);
/// otherwise all qubit pairs are allowed. Throws SynthesisError when the
/// synth fault-injection site fires (keyed by options.seed).
QSearchResult qsearch_synthesize(const linalg::Matrix& target, int num_qubits,
                                 const QSearchOptions& options = {},
                                 const noise::CouplingMap* coupling = nullptr);

}  // namespace qc::synth
