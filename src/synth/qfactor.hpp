// QFactor-style circuit optimizer (the paper's §6.5 roadmap tool).
//
// Unlike the gradient search in QSearch/QFast, QFactor sweeps the circuit
// gate by gate: for each single-qubit slot it computes the environment
// tensor of the Hilbert–Schmidt overlap and replaces the gate with the
// analytically optimal unitary (from the environment's SVD). Each update is
// globally optimal for that slot, so sweeps decrease the cost monotonically
// — no step sizes, no line searches. Handles wider circuits than tree
// search because the per-sweep cost is linear in gate count.
#pragma once

#include "common/deadline.hpp"
#include "ir/circuit.hpp"
#include "linalg/matrix.hpp"

namespace qc::synth {

/// Process default for QFactorOptions::incremental:
/// QAPPROX_SYNTH_INCREMENTAL (default on).
bool qfactor_incremental_default();

/// Process default for the `use_cache` option fields: QAPPROX_SYNTH_CACHE
/// (default on). Defined with the cache in cache.cpp.
bool synth_cache_enabled();

struct QFactorOptions {
  int max_sweeps = 60;
  /// Stop when a full sweep improves the cost by less than this.
  double tolerance = 1e-12;
  /// Declare convergence below this HS distance.
  double success_threshold = 1e-5;
  /// Polled once per sweep; on expiry the current (monotonically improved)
  /// angles are returned flagged `timed_out`.
  common::Deadline deadline;
  /// Maintain the forward product B·T† with O(dim²) row ops and extract each
  /// slot's environment directly from it, instead of two dense O(dim³) GEMMs
  /// per slot. Same fixed point; per-entry rounding differs from the dense
  /// path at the ~1e-12 level, so the dense sweep stays available as the
  /// oracle (QAPPROX_SYNTH_INCREMENTAL=0).
  bool incremental = qfactor_incremental_default();
  /// Memoize the whole run on (target, structure, options). Timed-out runs
  /// are never cached.
  bool use_cache = synth_cache_enabled();
};

struct QFactorResult {
  ir::QuantumCircuit circuit;  // same structure, re-optimized U3 angles
  double hs_distance = 1.0;
  int sweeps = 0;
  bool converged = false;
  /// True when the deadline cut the sweep loop short.
  bool timed_out = false;
};

/// Re-optimizes every U3 in `structure` (a {CX, U3} circuit; other gates are
/// lowered first) against `target`, keeping the CX skeleton fixed. The
/// incoming U3 angles are the starting point, so this doubles as a
/// fine-tuner for QSearch/QFast output.
QFactorResult qfactor_optimize(const ir::QuantumCircuit& structure,
                               const linalg::Matrix& target,
                               const QFactorOptions& options = {});

/// Unitary 2x2 maximizing |Tr(U K)| for a given complex 2x2 K (the SVD-based
/// environment update). Exposed for tests.
linalg::Matrix best_unitary_for_environment(const linalg::Matrix& k);

}  // namespace qc::synth
