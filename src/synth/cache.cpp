#include "synth/cache.hpp"

#include <deque>
#include <map>
#include <mutex>

#include "common/strings.hpp"
#include "obs/metrics.hpp"

namespace qc::synth {

bool synth_cache_enabled() {
  static const bool enabled = common::env_flag("QAPPROX_SYNTH_CACHE", true);
  return enabled;
}

namespace {

// One FIFO-bounded map per result type; a shared mutex keeps the whole cache
// consistent (lookups copy entries out, so the lock is never held while a
// search runs). FIFO rather than LRU: study access patterns are "same key
// re-requested soon after first compute", where recency tracking buys
// nothing over insertion order.
constexpr std::size_t kMaxEntriesPerKind = 128;

template <typename Key, typename Value>
class FifoMap {
 public:
  std::optional<Value> lookup(const Key& key) {
    const auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  void store(const Key& key, Value value) {
    if (map_.contains(key)) return;  // first result wins; identical anyway
    if (map_.size() >= kMaxEntriesPerKind) {
      map_.erase(order_.front());
      order_.pop_front();
    }
    map_.emplace(key, std::move(value));
    order_.push_back(key);
  }

  std::size_t size() const { return map_.size(); }
  void clear() {
    map_.clear();
    order_.clear();
  }

  /// Entries in insertion (FIFO) order; used by the disk snapshot.
  std::vector<std::pair<Key, Value>> dump() const {
    std::vector<std::pair<Key, Value>> out;
    out.reserve(map_.size());
    for (const Key& key : order_) {
      const auto it = map_.find(key);
      if (it != map_.end()) out.emplace_back(it->first, it->second);
    }
    return out;
  }

 private:
  std::map<Key, Value> map_;
  std::deque<Key> order_;
};

struct CacheState {
  std::mutex mu;
  FifoMap<QSearchCacheKey, CachedQSearch> qsearch;
  FifoMap<QFastCacheKey, CachedQFast> qfast;
  FifoMap<QFactorCacheKey, QFactorResult> qfactor;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

CacheState& state() {
  static CacheState s;
  return s;
}

void count_hit(CacheState& s, bool hit) {
  static obs::Counter& hits = obs::counter("synth.cache.hits");
  static obs::Counter& misses = obs::counter("synth.cache.misses");
  if (hit) {
    ++s.hits;
    hits.add();
  } else {
    ++s.misses;
    misses.add();
  }
}

template <typename Map, typename Key>
auto locked_lookup(Map& map, const Key& key) {
  CacheState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  auto found = map.lookup(key);
  count_hit(s, found.has_value());
  return found;
}

}  // namespace

SynthCacheStats synth_cache_stats() {
  CacheState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return SynthCacheStats{s.hits, s.misses,
                         s.qsearch.size() + s.qfast.size() + s.qfactor.size()};
}

void clear_synth_cache() {
  CacheState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.qsearch.clear();
  s.qfast.clear();
  s.qfactor.clear();
}

std::optional<CachedQSearch> synth_cache_lookup(const QSearchCacheKey& key) {
  return locked_lookup(state().qsearch, key);
}

std::optional<CachedQFast> synth_cache_lookup(const QFastCacheKey& key) {
  return locked_lookup(state().qfast, key);
}

std::optional<QFactorResult> synth_cache_lookup(const QFactorCacheKey& key) {
  return locked_lookup(state().qfactor, key);
}

void synth_cache_store(const QSearchCacheKey& key, CachedQSearch entry) {
  CacheState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.qsearch.store(key, std::move(entry));
}

void synth_cache_store(const QFastCacheKey& key, CachedQFast entry) {
  CacheState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.qfast.store(key, std::move(entry));
}

void synth_cache_store(const QFactorCacheKey& key, QFactorResult entry) {
  CacheState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.qfactor.store(key, std::move(entry));
}

std::vector<std::pair<QSearchCacheKey, CachedQSearch>> synth_cache_dump_qsearch() {
  CacheState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.qsearch.dump();
}

std::vector<std::pair<QFastCacheKey, CachedQFast>> synth_cache_dump_qfast() {
  CacheState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.qfast.dump();
}

std::vector<std::pair<QFactorCacheKey, QFactorResult>> synth_cache_dump_qfactor() {
  CacheState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.qfactor.dump();
}

}  // namespace qc::synth
