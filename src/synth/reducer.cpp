#include "synth/reducer.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.hpp"
#include "common/faults.hpp"
#include "metrics/process.hpp"
#include "synth/cost.hpp"
#include "transpile/decompose.hpp"

namespace qc::synth {

using ir::Gate;
using ir::GateKind;
using ir::QuantumCircuit;
using linalg::cplx;
using linalg::Matrix;

namespace {

/// Row/column U3 kernels for the boundary cost (V = B * M * A).
void u3_coeffs(const double* p, cplx& g00, cplx& g01, cplx& g10, cplx& g11) {
  const double c = std::cos(p[0] / 2.0), s = std::sin(p[0] / 2.0);
  g00 = cplx{c, 0.0};
  g01 = -std::polar(s, p[2]);
  g10 = std::polar(s, p[1]);
  g11 = std::polar(c, p[1] + p[2]);
}

void left_u3(Matrix& m, int q, const double* p) {
  cplx g00, g01, g10, g11;
  u3_coeffs(p, g00, g01, g10, g11);
  const std::size_t dim = m.rows();
  const std::size_t bit = std::size_t{1} << q;
  cplx* d = m.data();
  for (std::size_t r = 0; r < dim; ++r) {
    if (r & bit) continue;
    cplx* row0 = d + r * dim;
    cplx* row1 = d + (r | bit) * dim;
    for (std::size_t col = 0; col < dim; ++col) {
      const cplx v0 = row0[col], v1 = row1[col];
      row0[col] = g00 * v0 + g01 * v1;
      row1[col] = g10 * v0 + g11 * v1;
    }
  }
}

void right_u3(Matrix& m, int q, const double* p) {
  cplx g00, g01, g10, g11;
  u3_coeffs(p, g00, g01, g10, g11);
  const std::size_t dim = m.rows();
  const std::size_t bit = std::size_t{1} << q;
  cplx* d = m.data();
  for (std::size_t r = 0; r < dim; ++r) {
    cplx* row = d + r * dim;
    for (std::size_t c = 0; c < dim; ++c) {
      if (c & bit) continue;
      // (M G)(r, c) = M(r,c) g(c..) : columns mix with G's columns.
      const cplx v0 = row[c], v1 = row[c | bit];
      row[c] = v0 * g00 + v1 * g10;
      row[c | bit] = v0 * g01 + v1 * g11;
    }
  }
}

/// Cost of 1 - |Tr(T† (B M A))| / d over boundary-layer params
/// x = [A params (3n), B params (3n)].
class BoundaryCost {
 public:
  BoundaryCost(Matrix target, Matrix kept) : target_(std::move(target)), kept_(std::move(kept)) {}

  double operator()(const std::vector<double>& x) const {
    const int n = num_qubits();
    scratch_ = kept_;
    for (int q = 0; q < n; ++q) right_u3(scratch_, q, x.data() + 3 * q);
    for (int q = 0; q < n; ++q) left_u3(scratch_, q, x.data() + 3 * (n + q));
    const cplx* t = target_.data();
    const cplx* v = scratch_.data();
    cplx acc{0.0, 0.0};
    const std::size_t total = target_.rows() * target_.cols();
    for (std::size_t i = 0; i < total; ++i) acc += std::conj(t[i]) * v[i];
    return 1.0 - std::min(1.0, std::abs(acc) / static_cast<double>(target_.rows()));
  }

  void gradient(const std::vector<double>& x, std::vector<double>& grad) const {
    constexpr double h = 1e-6;
    grad.resize(x.size());
    std::vector<double> probe = x;
    for (std::size_t i = 0; i < x.size(); ++i) {
      probe[i] = x[i] + h;
      const double fp = (*this)(probe);
      probe[i] = x[i] - h;
      const double fm = (*this)(probe);
      probe[i] = x[i];
      grad[i] = (fp - fm) / (2.0 * h);
    }
  }

  int num_qubits() const {
    int n = 0;
    while ((std::size_t{1} << n) < target_.rows()) ++n;
    return n;
  }

 private:
  Matrix target_;
  Matrix kept_;
  mutable Matrix scratch_;
};

/// Deterministically chooses `k` of `total` CX indices. Variant 0 is evenly
/// spaced; others are seeded random subsets.
std::vector<std::size_t> choose_subset(std::size_t total, std::size_t k, int variant,
                                       common::Rng& rng) {
  std::vector<std::size_t> idx;
  if (k >= total) {
    idx.resize(total);
    for (std::size_t i = 0; i < total; ++i) idx[i] = i;
    return idx;
  }
  if (k == 0) return idx;
  if (variant == 0) {
    for (std::size_t i = 0; i < k; ++i)
      idx.push_back((i * total) / k + (total / (2 * k)));
    for (auto& v : idx) v = std::min(v, total - 1);
    std::sort(idx.begin(), idx.end());
    idx.erase(std::unique(idx.begin(), idx.end()), idx.end());
    return idx;
  }
  std::set<std::size_t> chosen;
  while (chosen.size() < k) chosen.insert(rng.uniform_int(total));
  return {chosen.begin(), chosen.end()};
}

}  // namespace

std::vector<ApproxCircuit> reduce_circuit(const QuantumCircuit& reference,
                                          const ReducerOptions& options,
                                          bool* timed_out) {
  if (timed_out != nullptr) *timed_out = false;
  if (common::faults::enabled() &&
      common::faults::fires(common::faults::Site::SynthFail, options.seed)) {
    throw common::SynthesisError("injected synthesis fault (reducer, seed " +
                                 std::to_string(options.seed) + ")");
  }
  const QuantumCircuit basis = transpile::decompose_to_cx_u3(reference).unitary_part();
  const Matrix target = basis.to_unitary();
  const int n = basis.num_qubits();

  // Positions of CX gates in the basis circuit.
  std::vector<std::size_t> cx_positions;
  for (std::size_t i = 0; i < basis.size(); ++i)
    if (basis.gate(i).kind == GateKind::CX) cx_positions.push_back(i);

  common::Rng rng(options.seed);
  std::vector<ApproxCircuit> out;
  std::set<std::pair<std::size_t, int>> seen;  // (cx count, variant) dedup

  for (double frac : options.keep_fractions) {
    QC_CHECK(frac >= 0.0 && frac <= 1.0);
    const auto k = static_cast<std::size_t>(
        std::llround(frac * static_cast<double>(cx_positions.size())));
    const int variants = (k == 0 || k == cx_positions.size()) ? 1 : options.variants_per_size;

    for (int variant = 0; variant < variants; ++variant) {
      if (options.deadline.expired()) {
        if (timed_out != nullptr) *timed_out = true;
        break;
      }
      if (!seen.insert({k, variant}).second) continue;
      common::Rng subset_rng = rng.split((k << 8) + static_cast<std::uint64_t>(variant));
      const auto kept_cx = choose_subset(cx_positions.size(), k, variant, subset_rng);

      const bool full_mode = static_cast<int>(kept_cx.size()) <= options.full_reopt_max_cx &&
                             n <= options.full_reopt_max_qubits;

      ApproxCircuit record;
      record.source = "reducer";

      if (full_mode) {
        // QSearch-shaped template on the kept CX skeleton, fully optimized.
        TemplateCircuit tpl = TemplateCircuit::u3_layer(n);
        for (std::size_t ci : kept_cx) {
          const Gate& g = basis.gate(cx_positions[ci]);
          tpl.add_qsearch_block(g.qubits[0], g.qubits[1]);
        }
        const HsCost cost(tpl, target);
        const CostFn f = [&cost](const std::vector<double>& x) { return cost(x); };
        const GradFn grad = [&cost](const std::vector<double>& x,
                                    std::vector<double>& gr) { cost.gradient(x, gr); };
        MultistartOptions ms;
        ms.inner = options.optimizer;
        ms.inner.deadline = options.deadline;  // per-iteration polling inside
        ms.num_starts = 2;
        const OptimizeResult opt =
            multistart_minimize(f, grad, tpl.identity_params(), subset_rng, ms);
        record.circuit = tpl.instantiate(opt.params);
        record.hs_distance = cost_to_hs_distance(opt.value);
        record.cnot_count = tpl.cx_count();
      } else {
        // Frozen interior (original angles, surviving CX only) + optimized
        // boundary layers.
        std::set<std::size_t> kept_cx_pos;
        for (std::size_t ci : kept_cx) kept_cx_pos.insert(cx_positions[ci]);
        QuantumCircuit interior(n);
        for (std::size_t i = 0; i < basis.size(); ++i) {
          const Gate& g = basis.gate(i);
          if (g.kind == GateKind::CX && !kept_cx_pos.count(i)) continue;
          interior.append(g);
        }
        BoundaryCost cost(target, interior.to_unitary());
        const CostFn f = [&cost](const std::vector<double>& x) { return cost(x); };
        const GradFn grad = [&cost](const std::vector<double>& x,
                                    std::vector<double>& gr) { cost.gradient(x, gr); };
        std::vector<double> x0(static_cast<std::size_t>(6 * n), 0.0);
        OptimizeOptions inner = options.optimizer;
        inner.deadline = options.deadline;
        const OptimizeResult opt = lbfgs_minimize(f, grad, x0, inner);

        QuantumCircuit bound(n);
        for (int q = 0; q < n; ++q)
          bound.u3(opt.params[3 * q], opt.params[3 * q + 1], opt.params[3 * q + 2], q);
        bound.append(interior);
        for (int q = 0; q < n; ++q)
          bound.u3(opt.params[3 * (n + q)], opt.params[3 * (n + q) + 1],
                   opt.params[3 * (n + q) + 2], q);
        record.circuit = std::move(bound);
        record.hs_distance = cost_to_hs_distance(opt.value);
        record.cnot_count = record.circuit.count(GateKind::CX);
      }

      if (options.callback) options.callback(record);
      out.push_back(std::move(record));
    }
  }

  std::sort(out.begin(), out.end(), [](const ApproxCircuit& a, const ApproxCircuit& b) {
    if (a.cnot_count != b.cnot_count) return a.cnot_count < b.cnot_count;
    return a.hs_distance < b.hs_distance;
  });
  return out;
}

}  // namespace qc::synth
