// Perturbative circuit reducer: the third approximation generator.
//
// Takes a reference circuit, deletes subsets of its CNOTs, and re-optimizes
// single-qubit freedom against the reference unitary. Two regimes:
//
//  * "full"     — the kept CX skeleton is re-dressed with a fresh U3 layer
//                 everywhere (QSearch-shaped template) and fully optimized.
//                 Best quality; cost grows with the skeleton, so it is used
//                 for shallow results.
//  * "boundary" — the kept sub-circuit (original angles) is frozen and only
//                 a leading and trailing U3 layer are optimized. O(6n)
//                 parameters regardless of depth, so it populates the deep
//                 end (tens-hundreds of CNOTs) of the approximation clouds
//                 that the 4/5-qubit Toffoli and hardware figures show,
//                 where tree search cannot reach in bounded time (see
//                 DESIGN.md substitution notes).
#pragma once

#include "synth/qsearch.hpp"

namespace qc::synth {

struct ReducerOptions {
  /// CX-count targets as fractions of the reference CX count; each fraction
  /// produces `variants_per_size` different subsets.
  std::vector<double> keep_fractions = {0.0, 0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 1.0};
  int variants_per_size = 3;
  /// Skeletons at or below this CX count use the "full" regime.
  int full_reopt_max_cx = 7;
  /// Qubit widths above this always use "boundary" (cost control).
  int full_reopt_max_qubits = 3;
  OptimizeOptions optimizer;
  std::uint64_t seed = 0x52454455;
  IntermediateCallback callback;
  /// Polled before each variant's optimization; on expiry the variants
  /// finished so far are returned (and *timed_out is set).
  common::Deadline deadline;
};

/// Generates approximations of `reference` (any gate set; lowered
/// internally). Deterministic in (reference, options.seed). Results are
/// sorted by CNOT count, deduplicated by (cx count, variant). On deadline
/// expiry the variants completed so far are returned and `*timed_out` (when
/// non-null) is set. Throws SynthesisError when the synth fault-injection
/// site fires (keyed by options.seed).
std::vector<ApproxCircuit> reduce_circuit(const ir::QuantumCircuit& reference,
                                          const ReducerOptions& options = {},
                                          bool* timed_out = nullptr);

}  // namespace qc::synth
