#include "synth/partition.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/error.hpp"
#include "synth/qfactor.hpp"
#include "transpile/decompose.hpp"

namespace qc::synth {

using ir::Gate;
using ir::GateKind;
using ir::QuantumCircuit;

std::vector<Partition> partition_circuit(const QuantumCircuit& circuit,
                                         int block_qubits) {
  QC_CHECK(block_qubits >= 2);
  std::vector<Partition> out;

  // Current open block state.
  std::set<int> support;
  std::vector<const Gate*> pending;
  std::size_t block_start = 0;

  auto flush = [&](std::size_t end_index) {
    if (pending.empty()) return;
    Partition p;
    p.qubits.assign(support.begin(), support.end());
    p.first_gate = block_start;
    p.last_gate = end_index;
    std::map<int, int> compact;
    for (std::size_t i = 0; i < p.qubits.size(); ++i)
      compact[p.qubits[i]] = static_cast<int>(i);
    QuantumCircuit sub(static_cast<int>(p.qubits.size()));
    for (const Gate* g : pending) {
      std::vector<int> qs;
      qs.reserve(g->qubits.size());
      for (int q : g->qubits) qs.push_back(compact.at(q));
      sub.append(Gate(g->kind, std::move(qs), g->params));
    }
    p.sub_circuit = std::move(sub);
    out.push_back(std::move(p));
    support.clear();
    pending.clear();
  };

  for (std::size_t i = 0; i < circuit.size(); ++i) {
    const Gate& g = circuit.gate(i);
    QC_CHECK_MSG(g.kind != GateKind::Measure,
                 "partition_circuit expects the unitary part of a circuit");
    if (g.kind == GateKind::Barrier) {
      flush(i == 0 ? 0 : i - 1);
      block_start = i + 1;
      continue;
    }
    QC_CHECK_MSG(static_cast<int>(g.qubits.size()) <= block_qubits,
                 "gate wider than the partition block size");

    std::set<int> grown = support;
    grown.insert(g.qubits.begin(), g.qubits.end());
    if (static_cast<int>(grown.size()) > block_qubits) {
      flush(i - 1);
      block_start = i;
      grown.clear();
      grown.insert(g.qubits.begin(), g.qubits.end());
    }
    support = std::move(grown);
    pending.push_back(&g);
  }
  flush(circuit.size() == 0 ? 0 : circuit.size() - 1);
  return out;
}

PartitionedSynthesisResult resynthesize_partitioned(
    const QuantumCircuit& circuit, const PartitionedSynthesisOptions& options) {
  const QuantumCircuit basis =
      transpile::decompose_to_cx_u3(circuit).unitary_part();
  const auto partitions = partition_circuit(basis, options.block_qubits);

  PartitionedSynthesisResult result;
  result.blocks_total = partitions.size();
  result.cnots_before = basis.count(GateKind::CX);
  QuantumCircuit rebuilt(basis.num_qubits(), basis.name());

  for (const Partition& p : partitions) {
    const QuantumCircuit& sub = p.sub_circuit;
    const std::size_t sub_cx = sub.count(GateKind::CX);

    bool replaced = false;
    if (sub.num_qubits() >= 2 && sub_cx >= 2) {
      const linalg::Matrix target = sub.to_unitary();
      QSearchOptions qopts = options.qsearch;
      qopts.success_threshold = std::max(qopts.success_threshold, 1e-8);
      qopts.max_cnots = std::min<int>(qopts.max_cnots, static_cast<int>(sub_cx) - 1);
      if (qopts.max_cnots >= 0) {
        QSearchResult found = qsearch_synthesize(target, sub.num_qubits(), qopts);
        if (options.qfactor_polish && !found.best.circuit.is_null()) {
          QFactorResult polished = qfactor_optimize(found.best.circuit, target);
          if (polished.hs_distance < found.best.hs_distance) {
            found.best.circuit = std::move(polished.circuit);
            found.best.hs_distance = polished.hs_distance;
          }
        }
        const bool acceptable = !found.best.circuit.is_null() &&
                                found.best.hs_distance <= options.block_hs_budget &&
                                found.best.cnot_count < sub_cx;
        if (acceptable) {
          std::vector<int> mapping = p.qubits;
          rebuilt.append_mapped(found.best.circuit, mapping);
          result.accumulated_hs += found.best.hs_distance;
          ++result.blocks_resynthesized;
          replaced = true;
        }
      }
    }
    if (!replaced) {
      rebuilt.append_mapped(sub, p.qubits);
    }
  }

  result.cnots_after = rebuilt.count(GateKind::CX);
  result.circuit = std::move(rebuilt);
  return result;
}

}  // namespace qc::synth
