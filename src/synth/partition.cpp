#include "synth/partition.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "obs/obs.hpp"
#include "synth/cache.hpp"
#include "synth/qfactor.hpp"
#include "transpile/decompose.hpp"

namespace qc::synth {

using ir::Gate;
using ir::GateKind;
using ir::QuantumCircuit;

namespace {

constexpr std::size_t kNoProblem = std::numeric_limits<std::size_t>::max();

/// Builds the compact-relabelled Partition for a closed block. `gate_indices`
/// are source-circuit indices in ascending order.
Partition make_partition(const QuantumCircuit& circuit, const std::set<int>& support,
                         const std::vector<std::size_t>& gate_indices) {
  Partition p;
  p.qubits.assign(support.begin(), support.end());
  // gate_indices need not be sorted (the DAG partitioner splices deferred
  // 1q gates in commute-safe, not index, order).
  p.first_gate = *std::min_element(gate_indices.begin(), gate_indices.end());
  p.last_gate = *std::max_element(gate_indices.begin(), gate_indices.end());
  std::map<int, int> compact;
  for (std::size_t i = 0; i < p.qubits.size(); ++i)
    compact[p.qubits[i]] = static_cast<int>(i);
  QuantumCircuit sub(static_cast<int>(p.qubits.size()));
  for (std::size_t idx : gate_indices) {
    const Gate& g = circuit.gate(idx);
    std::vector<int> qs;
    qs.reserve(g.qubits.size());
    for (int q : g.qubits) qs.push_back(compact.at(q));
    sub.append(Gate(g.kind, std::move(qs), g.params));
  }
  p.sub_circuit = std::move(sub);
  return p;
}

}  // namespace

std::vector<Partition> partition_circuit(const QuantumCircuit& circuit,
                                         int block_qubits) {
  QC_CHECK(block_qubits >= 2);
  std::vector<Partition> out;

  // Current open block state.
  std::set<int> support;
  std::vector<std::size_t> pending;

  auto flush = [&] {
    if (pending.empty()) return;
    out.push_back(make_partition(circuit, support, pending));
    support.clear();
    pending.clear();
  };

  for (std::size_t i = 0; i < circuit.size(); ++i) {
    const Gate& g = circuit.gate(i);
    QC_CHECK_MSG(g.kind != GateKind::Measure,
                 "partition_circuit expects the unitary part of a circuit");
    if (g.kind == GateKind::Barrier) {
      flush();
      continue;
    }
    QC_CHECK_MSG(static_cast<int>(g.qubits.size()) <= block_qubits,
                 "gate wider than the partition block size");

    std::set<int> grown = support;
    grown.insert(g.qubits.begin(), g.qubits.end());
    if (static_cast<int>(grown.size()) > block_qubits) {
      flush();
      grown.clear();
      grown.insert(g.qubits.begin(), g.qubits.end());
    }
    support = std::move(grown);
    pending.push_back(i);
  }
  flush();
  return out;
}

std::vector<Partition> partition_circuit_dag(const QuantumCircuit& circuit,
                                             int block_qubits,
                                             std::size_t max_block_gates) {
  QC_CHECK(block_qubits >= 2);

  // Invariant: every qubit is owned by at most one open block, and ownership
  // is released only when the block closes. Hence two concurrently-open
  // blocks never touch a common qubit, so they carry no mutual dependency,
  // and a qubit handed from block X to block Y proves X closed first —
  // emission at close time is a valid linearization of the block DAG.
  //
  // Unowned 1q gates are deferred into per-qubit pending buffers (they
  // commute past every open block, which by the invariant cannot touch their
  // qubit) and emitted as singleton passthrough blocks when the qubit is next
  // acquired. Without the deferral every 1q layer opens a wave of blocks
  // that de-phases block formation relative to the circuit's period and
  // ruins dedupe; folding the deferred gates *into* the acquiring block
  // would be worse still — it contaminates otherwise identical entangling
  // blocks with step-dependent rotations (e.g. a ramped Trotter field),
  // making every block a unique, denser, harder synthesis target.
  struct OpenBlock {
    std::set<int> support;
    std::vector<std::size_t> gate_indices;
    std::uint64_t opened_at = 0;
  };

  std::vector<Partition> out;
  std::vector<std::unique_ptr<OpenBlock>> live;  // in opening order
  std::vector<OpenBlock*> owner(static_cast<std::size_t>(circuit.num_qubits()),
                                nullptr);
  std::vector<std::vector<std::size_t>> pending(
      static_cast<std::size_t>(circuit.num_qubits()));
  std::uint64_t open_counter = 0;

  auto close = [&](OpenBlock* b) {
    out.push_back(make_partition(circuit, b->support, b->gate_indices));
    for (int q : b->support) owner[static_cast<std::size_t>(q)] = nullptr;
    live.erase(std::find_if(live.begin(), live.end(),
                            [&](const auto& p) { return p.get() == b; }));
  };
  auto close_all = [&] {
    while (!live.empty()) close(live.front().get());
    for (std::size_t q = 0; q < pending.size(); ++q) {
      if (pending[q].empty()) continue;
      out.push_back(make_partition(circuit, {static_cast<int>(q)}, pending[q]));
      pending[q].clear();
    }
  };
  // Grows `b` by gate i; each newly acquired qubit first flushes its
  // deferred 1q gates as a singleton block (every gate of `b` so far is
  // disjoint from that qubit, so emitting them ahead of `b` is order-safe).
  auto absorb = [&](OpenBlock* b, const Gate& g, std::size_t i) {
    for (int q : g.qubits) {
      if (owner[static_cast<std::size_t>(q)] == b) continue;
      auto& defer = pending[static_cast<std::size_t>(q)];
      if (!defer.empty()) {
        out.push_back(make_partition(circuit, {q}, defer));
        defer.clear();
      }
      b->support.insert(q);
      owner[static_cast<std::size_t>(q)] = b;
    }
    b->gate_indices.push_back(i);
    if (max_block_gates > 0 && b->gate_indices.size() >= max_block_gates) close(b);
  };
  auto open_block = [&](const Gate& g, std::size_t i) {
    auto b = std::make_unique<OpenBlock>();
    b->opened_at = open_counter++;
    OpenBlock* raw = b.get();
    live.push_back(std::move(b));
    absorb(raw, g, i);
  };

  for (std::size_t i = 0; i < circuit.size(); ++i) {
    const Gate& g = circuit.gate(i);
    QC_CHECK_MSG(g.kind != GateKind::Measure,
                 "partition_circuit_dag expects the unitary part of a circuit");
    if (g.kind == GateKind::Barrier) {
      close_all();
      continue;
    }
    QC_CHECK_MSG(static_cast<int>(g.qubits.size()) <= block_qubits,
                 "gate wider than the partition block size");

    // Open blocks owning a qubit of g, in opening order (live is ordered).
    std::vector<OpenBlock*> owners;
    for (const auto& b : live) {
      for (int q : g.qubits) {
        if (owner[static_cast<std::size_t>(q)] == b.get()) {
          owners.push_back(b.get());
          break;
        }
      }
    }

    if (owners.empty()) {
      if (g.qubits.size() == 1) {
        pending[static_cast<std::size_t>(g.qubits[0])].push_back(i);
      } else {
        open_block(g, i);
      }
      continue;
    }

    if (owners.size() == 1) {
      OpenBlock* b = owners.front();
      std::set<int> grown = b->support;
      grown.insert(g.qubits.begin(), g.qubits.end());
      if (static_cast<int>(grown.size()) <= block_qubits) {
        absorb(b, g, i);
      } else {
        close(b);
        open_block(g, i);
      }
      continue;
    }

    // The gate straddles blocks. Keep the owner that can absorb it once the
    // others close (preferring the one already containing most of the gate's
    // qubits; ties break toward the most recently opened, which keeps block
    // formation phase-locked on periodic circuits); every other owner's
    // gates all precede g, so closing them now keeps the emission order a
    // valid linearization.
    OpenBlock* keep = nullptr;
    std::size_t keep_overlap = 0;
    for (OpenBlock* b : owners) {
      std::set<int> grown = b->support;
      grown.insert(g.qubits.begin(), g.qubits.end());
      if (static_cast<int>(grown.size()) > block_qubits) continue;
      std::size_t overlap = 0;
      for (int q : g.qubits)
        if (b->support.contains(q)) ++overlap;
      if (keep == nullptr || overlap > keep_overlap ||
          (overlap == keep_overlap && b->opened_at > keep->opened_at)) {
        keep = b;
        keep_overlap = overlap;
      }
    }
    for (OpenBlock* b : owners)
      if (b != keep) close(b);
    if (keep != nullptr) {
      absorb(keep, g, i);
    } else {
      open_block(g, i);
    }
  }
  close_all();
  return out;
}

namespace {

/// One deduped synthesis problem: the canonical block plus the slots the
/// parallel fan-out fills. Each worker writes only its own problem, so the
/// schedule is bit-identical for any thread count.
struct SynthProblem {
  linalg::Matrix target;
  int num_qubits = 0;
  std::size_t sub_cx = 0;
  ApproxCircuit found;     // null circuit when nothing usable came back
  bool failed = false;     // search threw (fault injection, synthesis error)
  bool skipped = false;    // deadline expired before the search started
  bool timed_out = false;  // search itself hit the deadline
  std::string error;
};

/// Calibration noise weight of one block: the summed device error rates of
/// its gates (circuit qubit i = device qubit i; gates falling outside the
/// device or off its coupling map weigh in at the device averages). More
/// noise -> more of the global budget.
double block_noise_weight(const Partition& p, const noise::DeviceProperties& dev,
                          double avg_sq_error) {
  const int dev_qubits = dev.num_qubits();
  double w = 0.0;
  for (const Gate& g : p.sub_circuit.gates()) {
    if (g.qubits.size() == 2) {
      const int a = p.qubits[static_cast<std::size_t>(g.qubits[0])];
      const int b = p.qubits[static_cast<std::size_t>(g.qubits[1])];
      const bool on_device = a < dev_qubits && b < dev_qubits &&
                             dev.coupling.are_coupled(a, b);
      w += on_device ? dev.cx_error_for(a, b) : dev.average_cx_error();
    } else if (g.qubits.size() == 1) {
      const int a = p.qubits[static_cast<std::size_t>(g.qubits[0])];
      w += a < dev_qubits ? dev.sq_error[static_cast<std::size_t>(a)]
                          : avg_sq_error;
    }
  }
  return w;
}

}  // namespace

PartitionedSynthesisResult resynthesize_partitioned(
    const QuantumCircuit& circuit, const PartitionedSynthesisOptions& options) {
  static obs::Histogram& partition_ns = obs::histogram("synth.partition_ns");
  obs::Span span("synth.partition", &partition_ns);

  int block_qubits = options.block_qubits;
  if (block_qubits < 2 || block_qubits > 4) {
    const int clamped = std::clamp(block_qubits, 2, 4);
    QC_LOG_WARN("synth", "block_qubits=%d outside [2, 4]; clamping to %d",
                block_qubits, clamped);
    block_qubits = clamped;
  }

  const QuantumCircuit lowered = transpile::decompose_to_cx_u3(circuit);
  const QuantumCircuit basis = lowered.unitary_part();
  const std::vector<Partition> partitions =
      options.strategy == PartitionStrategy::kLinear
          ? partition_circuit(basis, block_qubits)
          : partition_circuit_dag(basis, block_qubits, options.max_block_gates);

  const SynthCacheStats cache_before = synth_cache_stats();

  PartitionedSynthesisResult result;
  result.blocks_total = partitions.size();
  result.cnots_before = basis.count(GateKind::CX);
  result.blocks.resize(partitions.size());

  // ---- canonicalize + dedupe: block instance -> unique synthesis problem.
  // Each block's unitary is computed exactly once here and threaded through
  // search, polish, and the acceptance check.
  std::vector<std::size_t> block_problem(partitions.size(), kNoProblem);
  std::vector<SynthProblem> problems;
  std::map<BlockKey, std::size_t> canonical;
  for (std::size_t i = 0; i < partitions.size(); ++i) {
    const QuantumCircuit& sub = partitions[i].sub_circuit;
    PartitionBlockStat& stat = result.blocks[i];
    stat.qubits = partitions[i].qubits;
    stat.gates = sub.size();
    stat.cx_before = sub.count(GateKind::CX);
    stat.cx_after = stat.cx_before;
    const std::size_t sub_cx = stat.cx_before;
    const int eff_max_cnots =
        std::min<int>(options.qsearch.max_cnots, static_cast<int>(sub_cx) - 1);
    if (sub.num_qubits() < 2 || sub_cx < 2 || eff_max_cnots < 0) continue;

    linalg::Matrix unitary = sub.to_unitary();
    BlockKey key;
    key.unitary_fp = unitary.fingerprint();
    key.circuit_fp = sub.fingerprint();
    key.dim = unitary.rows();
    key.num_qubits = sub.num_qubits();
    key.gate_count = sub.size();
    key.cx_count = sub_cx;
    key.max_cnots = eff_max_cnots;
    if (options.dedupe) {
      const auto [it, inserted] = canonical.try_emplace(key, problems.size());
      if (!inserted) {
        block_problem[i] = it->second;
        stat.deduped = true;
        ++result.dedupe_hits;
        continue;
      }
    }
    block_problem[i] = problems.size();
    SynthProblem problem;
    problem.target = std::move(unitary);
    problem.num_qubits = sub.num_qubits();
    problem.sub_cx = sub_cx;
    problems.push_back(std::move(problem));
  }
  result.unique_blocks = problems.size();

  // ---- budget allocation across eligible block instances.
  std::vector<double> budget(partitions.size(), 0.0);
  if (options.total_hs_budget > 0.0) {
    std::vector<double> weight(partitions.size(), 0.0);
    double weight_sum = 0.0;
    double avg_sq_error = 0.0;
    if (options.device != nullptr && !options.device->sq_error.empty()) {
      for (double e : options.device->sq_error) avg_sq_error += e;
      avg_sq_error /= static_cast<double>(options.device->sq_error.size());
    }
    for (std::size_t i = 0; i < partitions.size(); ++i) {
      if (block_problem[i] == kNoProblem) continue;
      weight[i] = options.device != nullptr
                      ? block_noise_weight(partitions[i], *options.device,
                                           avg_sq_error)
                      : 1.0;
      weight_sum += weight[i];
    }
    for (std::size_t i = 0; i < partitions.size(); ++i) {
      if (block_problem[i] == kNoProblem) continue;
      // A zero weight sum (noise-free calibration) degrades to uniform.
      budget[i] = weight_sum > 0.0
                      ? options.total_hs_budget * weight[i] / weight_sum
                      : options.total_hs_budget /
                            static_cast<double>(result.unique_blocks +
                                                result.dedupe_hits);
      result.blocks[i].noise_weight = weight[i];
    }
  } else {
    for (std::size_t i = 0; i < partitions.size(); ++i)
      if (block_problem[i] != kNoProblem) budget[i] = options.block_hs_budget;
  }
  for (std::size_t i = 0; i < partitions.size(); ++i) {
    result.blocks[i].budget = budget[i];
    result.budget_total += budget[i];
  }

  // ---- synthesize unique problems (parallel fan-out through the synthesis
  // cache). The searches are independent and deterministic, so the parallel
  // schedule is bit-identical to the serial one (with an unbounded deadline;
  // a bounded deadline makes any schedule time-dependent, exactly like the
  // engine's partial results).
  QSearchOptions qbase = options.qsearch;
  qbase.success_threshold = std::max(qbase.success_threshold, 1e-8);
  if (!qbase.deadline.bounded()) qbase.deadline = options.deadline;
  auto synth_one = [&](std::size_t pi) {
    SynthProblem& problem = problems[pi];
    if (options.deadline.expired()) {
      problem.skipped = true;
      return;
    }
    try {
      QSearchOptions qopts = qbase;
      qopts.max_cnots = std::min<int>(qbase.max_cnots,
                                      static_cast<int>(problem.sub_cx) - 1);
      QSearchResult found =
          qsearch_synthesize(problem.target, problem.num_qubits, qopts);
      if (found.timed_out) problem.timed_out = true;
      if (options.qfactor_polish && !found.best.circuit.is_null()) {
        QFactorOptions fopts;
        fopts.deadline = qopts.deadline;
        QFactorResult polished =
            qfactor_optimize(found.best.circuit, problem.target, fopts);
        if (polished.timed_out) problem.timed_out = true;
        if (polished.hs_distance < found.best.hs_distance) {
          found.best.circuit = std::move(polished.circuit);
          found.best.hs_distance = polished.hs_distance;
        }
      }
      problem.found = std::move(found.best);
    } catch (const common::Error& e) {
      // A failed search never fails the call: its instances pass through
      // unchanged (never a regression), the failure is surfaced in stats.
      problem.failed = true;
      problem.error = e.what();
    }
  };
  if (options.parallel_blocks && problems.size() > 1) {
    common::ThreadPool& pool =
        options.pool != nullptr ? *options.pool : common::ThreadPool::global();
    pool.parallel_for(0, problems.size(),
                      [&](std::size_t pi) { synth_one(pi); });
  } else {
    common::StopPoller poller(options.deadline, 1);
    for (std::size_t pi = 0; pi < problems.size(); ++pi) {
      if (poller.should_stop()) {
        problems[pi].skipped = true;
        continue;
      }
      synth_one(pi);
    }
  }
  for (const SynthProblem& problem : problems) {
    if (problem.failed) {
      ++result.block_failures;
      QC_LOG_WARN("synth", "partition block synthesis failed (%s); keeping the block",
                  problem.error.c_str());
    }
    if (problem.skipped || problem.timed_out) result.timed_out = true;
  }

  // ---- serial assembly in block order (deterministic).
  QuantumCircuit rebuilt(basis.num_qubits(), basis.name());
  for (std::size_t i = 0; i < partitions.size(); ++i) {
    const Partition& p = partitions[i];
    PartitionBlockStat& stat = result.blocks[i];
    bool replaced = false;
    if (block_problem[i] != kNoProblem) {
      const SynthProblem& problem = problems[block_problem[i]];
      const ApproxCircuit& best = problem.found;
      const bool acceptable = !problem.skipped && !problem.failed &&
                              !best.circuit.is_null() &&
                              best.hs_distance <= budget[i] &&
                              best.cnot_count < problem.sub_cx;
      if (acceptable) {
        rebuilt.append_mapped(best.circuit, p.qubits);
        result.accumulated_hs += best.hs_distance;
        ++result.blocks_resynthesized;
        stat.resynthesized = true;
        stat.hs_spent = best.hs_distance;
        stat.cx_after = best.cnot_count;
        replaced = true;
      }
    }
    if (!replaced) rebuilt.append_mapped(p.sub_circuit, p.qubits);
  }
  // Measurements survive the rewrite (the old path silently dropped them).
  for (const Gate& g : lowered.gates())
    if (g.kind == GateKind::Measure) rebuilt.append(g);

  result.cnots_after = rebuilt.count(GateKind::CX);
  result.circuit = std::move(rebuilt);

  const SynthCacheStats cache_after = synth_cache_stats();
  result.cache_hits = cache_after.hits - cache_before.hits;
  result.cache_misses = cache_after.misses - cache_before.misses;

  static obs::Counter& c_calls = obs::counter("synth.partition.calls");
  static obs::Counter& c_blocks = obs::counter("synth.partition.blocks_total");
  static obs::Counter& c_resynth =
      obs::counter("synth.partition.blocks_resynthesized");
  static obs::Counter& c_dedupe = obs::counter("synth.partition.dedupe_hits");
  static obs::Counter& c_unique = obs::counter("synth.partition.unique_blocks");
  static obs::Counter& c_cache_hits = obs::counter("synth.partition.cache_hits");
  static obs::Counter& c_cache_misses =
      obs::counter("synth.partition.cache_misses");
  static obs::Counter& c_failures = obs::counter("synth.partition.block_failures");
  c_calls.add(1);
  c_blocks.add(result.blocks_total);
  c_resynth.add(result.blocks_resynthesized);
  c_dedupe.add(result.dedupe_hits);
  c_unique.add(result.unique_blocks);
  c_cache_hits.add(result.cache_hits);
  c_cache_misses.add(result.cache_misses);
  c_failures.add(result.block_failures);
  if (span.active()) {
    span.arg("blocks", result.blocks_total);
    span.arg("unique", result.unique_blocks);
    span.arg("dedupe_hits", result.dedupe_hits);
    span.arg("resynthesized", result.blocks_resynthesized);
    span.arg("cnots_before", result.cnots_before);
    span.arg("cnots_after", result.cnots_after);
  }
  return result;
}

}  // namespace qc::synth
