// QFast-style hierarchical synthesis.
//
// Like the original tool, it explores a *continuous* circuit space that
// scales past QSearch's reach (4-6 qubits): the structure is a chain of
// generic two-qubit blocks (each expressive enough for any SU(4) element);
// depth grows until the target fidelity is met or the depth cap hits.
// Because each generic block is parameterized directly over {CX, U3}, the
// instantiation stage of the original pipeline is the identity here.
//
// The original requires no source modification to harvest approximations —
// callers pass a `partial_solution_callback`; this port keeps exactly that
// interface (every optimized depth, and optionally interleaved coarse
// passes, are reported through it).
#pragma once

#include "synth/qsearch.hpp"

namespace qc::synth {

struct QFastOptions {
  double success_threshold = 1e-8;
  int max_blocks = 16;           // 3 CX per block
  OptimizeOptions optimizer;
  int restarts_per_depth = 1;
  std::uint64_t seed = 0x51464153;
  /// The original tool's model_options["partial_solution_callback"].
  IntermediateCallback partial_solution_callback;
  /// Also emit snapshots at reduced optimization budgets per depth, widening
  /// the harvested approximation set (off reproduces stock QFast output).
  bool emit_coarse_passes = true;
  /// Polled before each depth growth and inside each depth's optimization;
  /// on expiry the best circuit so far is returned flagged `timed_out`.
  common::Deadline deadline;
  /// Memoize the whole run on (target, edges, options, seed); repeated calls
  /// replay the recorded partial-solution stream. Timed-out runs are never
  /// cached.
  bool use_cache = synth_cache_enabled();
};

struct QFastResult {
  ApproxCircuit best;
  bool converged = false;
  int depths_tried = 0;
  /// True when the deadline cut depth growth short.
  bool timed_out = false;
};

/// Synthesizes `target`; block placement follows a fixed deterministic sweep
/// over `coupling` edges (or all pairs when null), mirroring the tool's
/// layered exploration.
QFastResult qfast_synthesize(const linalg::Matrix& target, int num_qubits,
                             const QFastOptions& options = {},
                             const noise::CouplingMap* coupling = nullptr);

}  // namespace qc::synth
