#include "synth/persist.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/io.hpp"
#include "common/json.hpp"
#include "ir/circuit.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "synth/cache.hpp"

namespace qc::synth {

namespace {

using common::json::Value;

constexpr int kSnapshotVersion = 1;

std::string u64_hex(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%" PRIx64, v);
  return buf;
}

std::uint64_t u64_from_hex(const Value& v) {
  const std::string& hex = v.as_string();
  QC_CHECK_MSG(!hex.empty() && hex.size() <= 16, "synth snapshot: bad u64 field");
  char* end = nullptr;
  const std::uint64_t out = std::strtoull(hex.c_str(), &end, 16);
  QC_CHECK_MSG(end != nullptr && *end == '\0', "synth snapshot: bad u64 field");
  return out;
}

Value edges_to_json(const std::vector<std::pair<int, int>>& edges) {
  Value arr = Value::array();
  for (const auto& [a, b] : edges) {
    Value e = Value::array();
    e.push_back(a).push_back(b);
    arr.push_back(std::move(e));
  }
  return arr;
}

std::vector<std::pair<int, int>> edges_from_json(const Value& v) {
  std::vector<std::pair<int, int>> edges;
  for (const Value& e : v.as_array()) {
    QC_CHECK_MSG(e.is_array() && e.size() == 2, "synth snapshot: bad edge");
    edges.emplace_back(static_cast<int>(e.as_array()[0].as_int()),
                       static_cast<int>(e.as_array()[1].as_int()));
  }
  return edges;
}

Value circuit_to_json(const ir::QuantumCircuit& circuit) {
  Value out = Value::object();
  out.set("n", circuit.num_qubits());
  if (!circuit.name().empty()) out.set("name", circuit.name());
  Value gates = Value::array();
  for (const ir::Gate& g : circuit.gates()) {
    Value entry = Value::array();
    entry.push_back(ir::gate_name(g.kind));
    Value qubits = Value::array();
    for (int q : g.qubits) qubits.push_back(q);
    entry.push_back(std::move(qubits));
    if (!g.params.empty()) {
      Value params = Value::array();
      for (double p : g.params) params.push_back(p);
      entry.push_back(std::move(params));
    }
    gates.push_back(std::move(entry));
  }
  out.set("gates", std::move(gates));
  return out;
}

ir::QuantumCircuit circuit_from_json(const Value& v) {
  ir::QuantumCircuit circuit(static_cast<int>(v.get_int("n", 0)),
                             v.get_string("name", ""));
  const Value* gates = v.find("gates");
  QC_CHECK_MSG(gates != nullptr && gates->is_array(),
               "synth snapshot: circuit lacks gates");
  for (const Value& entry : gates->as_array()) {
    const auto& fields = entry.as_array();
    QC_CHECK_MSG(fields.size() >= 2, "synth snapshot: bad gate entry");
    const ir::GateKind kind = ir::gate_kind_from_name(fields[0].as_string());
    std::vector<int> qubits;
    for (const Value& q : fields[1].as_array())
      qubits.push_back(static_cast<int>(q.as_int()));
    std::vector<double> params;
    if (fields.size() > 2)
      for (const Value& p : fields[2].as_array()) params.push_back(p.as_number());
    circuit.append(ir::Gate(kind, std::move(qubits), std::move(params)));
  }
  return circuit;
}

Value approx_to_json(const ApproxCircuit& a) {
  Value out = Value::object();
  out.set("circuit", circuit_to_json(a.circuit));
  out.set("hs", a.hs_distance);
  out.set("cnots", a.cnot_count);
  out.set("source", a.source);
  return out;
}

ApproxCircuit approx_from_json(const Value& v) {
  ApproxCircuit a;
  const Value* circuit = v.find("circuit");
  QC_CHECK_MSG(circuit != nullptr, "synth snapshot: entry lacks circuit");
  a.circuit = circuit_from_json(*circuit);
  a.hs_distance = v.get_number("hs", 1.0);
  a.cnot_count = static_cast<std::size_t>(v.get_int("cnots", 0));
  a.source = v.get_string("source", "");
  return a;
}

Value stream_to_json(const std::vector<ApproxCircuit>& stream) {
  Value arr = Value::array();
  for (const ApproxCircuit& a : stream) arr.push_back(approx_to_json(a));
  return arr;
}

std::vector<ApproxCircuit> stream_from_json(const Value& v) {
  std::vector<ApproxCircuit> stream;
  for (const Value& a : v.as_array()) stream.push_back(approx_from_json(a));
  return stream;
}

// ---- per-kind key/entry codecs ---------------------------------------------

Value qsearch_key_to_json(const QSearchCacheKey& k) {
  Value out = Value::object();
  out.set("target_fp", u64_hex(k.target_fp));
  out.set("dim", k.dim);
  out.set("qubits", k.num_qubits);
  out.set("edges", edges_to_json(k.edges));
  out.set("success_bits", u64_hex(k.success_threshold_bits));
  out.set("depth_weight_bits", u64_hex(k.depth_weight_bits));
  out.set("opt_tol_bits", u64_hex(k.opt_tolerance_bits));
  out.set("max_cnots", k.max_cnots);
  out.set("max_nodes", k.max_nodes);
  out.set("opt_max_iter", k.opt_max_iterations);
  out.set("opt_lbfgs", k.opt_lbfgs_memory);
  out.set("restarts", k.restarts_per_node);
  out.set("seed", u64_hex(k.seed));
  out.set("gradient_mode", k.gradient_mode);
  return out;
}

QSearchCacheKey qsearch_key_from_json(const Value& v) {
  QSearchCacheKey k;
  k.target_fp = u64_from_hex(*v.find("target_fp"));
  k.dim = static_cast<std::uint64_t>(v.get_int("dim", 0));
  k.num_qubits = static_cast<int>(v.get_int("qubits", 0));
  k.edges = edges_from_json(*v.find("edges"));
  k.success_threshold_bits = u64_from_hex(*v.find("success_bits"));
  k.depth_weight_bits = u64_from_hex(*v.find("depth_weight_bits"));
  k.opt_tolerance_bits = u64_from_hex(*v.find("opt_tol_bits"));
  k.max_cnots = static_cast<int>(v.get_int("max_cnots", 0));
  k.max_nodes = static_cast<int>(v.get_int("max_nodes", 0));
  k.opt_max_iterations = static_cast<int>(v.get_int("opt_max_iter", 0));
  k.opt_lbfgs_memory = static_cast<int>(v.get_int("opt_lbfgs", 0));
  k.restarts_per_node = static_cast<int>(v.get_int("restarts", 0));
  k.seed = u64_from_hex(*v.find("seed"));
  k.gradient_mode = static_cast<int>(v.get_int("gradient_mode", 0));
  return k;
}

Value qfast_key_to_json(const QFastCacheKey& k) {
  Value out = Value::object();
  out.set("target_fp", u64_hex(k.target_fp));
  out.set("dim", k.dim);
  out.set("qubits", k.num_qubits);
  out.set("edges", edges_to_json(k.edges));
  out.set("success_bits", u64_hex(k.success_threshold_bits));
  out.set("opt_tol_bits", u64_hex(k.opt_tolerance_bits));
  out.set("max_blocks", k.max_blocks);
  out.set("opt_max_iter", k.opt_max_iterations);
  out.set("opt_lbfgs", k.opt_lbfgs_memory);
  out.set("restarts", k.restarts_per_depth);
  out.set("coarse", k.emit_coarse_passes);
  out.set("seed", u64_hex(k.seed));
  out.set("gradient_mode", k.gradient_mode);
  return out;
}

QFastCacheKey qfast_key_from_json(const Value& v) {
  QFastCacheKey k;
  k.target_fp = u64_from_hex(*v.find("target_fp"));
  k.dim = static_cast<std::uint64_t>(v.get_int("dim", 0));
  k.num_qubits = static_cast<int>(v.get_int("qubits", 0));
  k.edges = edges_from_json(*v.find("edges"));
  k.success_threshold_bits = u64_from_hex(*v.find("success_bits"));
  k.opt_tolerance_bits = u64_from_hex(*v.find("opt_tol_bits"));
  k.max_blocks = static_cast<int>(v.get_int("max_blocks", 0));
  k.opt_max_iterations = static_cast<int>(v.get_int("opt_max_iter", 0));
  k.opt_lbfgs_memory = static_cast<int>(v.get_int("opt_lbfgs", 0));
  k.restarts_per_depth = static_cast<int>(v.get_int("restarts", 0));
  k.emit_coarse_passes = v.get_bool("coarse", false);
  k.seed = u64_from_hex(*v.find("seed"));
  k.gradient_mode = static_cast<int>(v.get_int("gradient_mode", 0));
  return k;
}

Value qfactor_key_to_json(const QFactorCacheKey& k) {
  Value out = Value::object();
  out.set("target_fp", u64_hex(k.target_fp));
  out.set("structure_fp", u64_hex(k.structure_fp));
  out.set("dim", k.dim);
  out.set("qubits", k.num_qubits);
  out.set("tol_bits", u64_hex(k.tolerance_bits));
  out.set("success_bits", u64_hex(k.success_threshold_bits));
  out.set("max_sweeps", k.max_sweeps);
  out.set("incremental", k.incremental);
  return out;
}

QFactorCacheKey qfactor_key_from_json(const Value& v) {
  QFactorCacheKey k;
  k.target_fp = u64_from_hex(*v.find("target_fp"));
  k.structure_fp = u64_from_hex(*v.find("structure_fp"));
  k.dim = static_cast<std::uint64_t>(v.get_int("dim", 0));
  k.num_qubits = static_cast<int>(v.get_int("qubits", 0));
  k.tolerance_bits = u64_from_hex(*v.find("tol_bits"));
  k.success_threshold_bits = u64_from_hex(*v.find("success_bits"));
  k.max_sweeps = static_cast<int>(v.get_int("max_sweeps", 0));
  k.incremental = v.get_bool("incremental", false);
  return k;
}

std::string join_path(const std::string& dir, const char* file) {
  if (dir.empty() || dir.back() == '/') return dir + file;
  return dir + "/" + file;
}

}  // namespace

const std::string& synth_cache_dir_env() {
  static const std::string dir = [] {
    const char* v = std::getenv("QAPPROX_SYNTH_CACHE_DIR");
    return std::string(v == nullptr ? "" : v);
  }();
  return dir;
}

std::string synth_cache_serialize() {
  Value doc = Value::object();
  doc.set("version", kSnapshotVersion);

  Value qsearch = Value::array();
  for (const auto& [key, entry] : synth_cache_dump_qsearch()) {
    Value row = Value::object();
    row.set("key", qsearch_key_to_json(key));
    Value result = Value::object();
    result.set("best", approx_to_json(entry.result.best));
    result.set("converged", entry.result.converged);
    result.set("nodes_expanded", entry.result.nodes_expanded);
    result.set("nodes_optimized", entry.result.nodes_optimized);
    row.set("result", std::move(result));
    row.set("stream", stream_to_json(entry.stream));
    qsearch.push_back(std::move(row));
  }
  doc.set("qsearch", std::move(qsearch));

  Value qfast = Value::array();
  for (const auto& [key, entry] : synth_cache_dump_qfast()) {
    Value row = Value::object();
    row.set("key", qfast_key_to_json(key));
    Value result = Value::object();
    result.set("best", approx_to_json(entry.result.best));
    result.set("converged", entry.result.converged);
    result.set("depths_tried", entry.result.depths_tried);
    row.set("result", std::move(result));
    row.set("stream", stream_to_json(entry.stream));
    qfast.push_back(std::move(row));
  }
  doc.set("qfast", std::move(qfast));

  Value qfactor = Value::array();
  for (const auto& [key, entry] : synth_cache_dump_qfactor()) {
    Value row = Value::object();
    row.set("key", qfactor_key_to_json(key));
    Value result = Value::object();
    result.set("circuit", circuit_to_json(entry.circuit));
    result.set("hs", entry.hs_distance);
    result.set("sweeps", entry.sweeps);
    result.set("converged", entry.converged);
    row.set("result", std::move(result));
    qfactor.push_back(std::move(row));
  }
  doc.set("qfactor", std::move(qfactor));

  return doc.dump();
}

std::size_t synth_cache_deserialize(const std::string& text) {
  const Value doc = common::json::parse(text);
  QC_CHECK_MSG(doc.get_int("version", -1) == kSnapshotVersion,
               "synth snapshot: unsupported version");
  std::size_t loaded = 0;

  if (const Value* rows = doc.find("qsearch")) {
    for (const Value& row : rows->as_array()) {
      const QSearchCacheKey key = qsearch_key_from_json(*row.find("key"));
      const Value* result = row.find("result");
      QC_CHECK_MSG(result != nullptr, "synth snapshot: row lacks result");
      CachedQSearch entry;
      entry.result.best = approx_from_json(*result->find("best"));
      entry.result.converged = result->get_bool("converged", false);
      entry.result.nodes_expanded =
          static_cast<int>(result->get_int("nodes_expanded", 0));
      entry.result.nodes_optimized =
          static_cast<int>(result->get_int("nodes_optimized", 0));
      if (const Value* stream = row.find("stream"))
        entry.stream = stream_from_json(*stream);
      synth_cache_store(key, std::move(entry));
      ++loaded;
    }
  }

  if (const Value* rows = doc.find("qfast")) {
    for (const Value& row : rows->as_array()) {
      const QFastCacheKey key = qfast_key_from_json(*row.find("key"));
      const Value* result = row.find("result");
      QC_CHECK_MSG(result != nullptr, "synth snapshot: row lacks result");
      CachedQFast entry;
      entry.result.best = approx_from_json(*result->find("best"));
      entry.result.converged = result->get_bool("converged", false);
      entry.result.depths_tried =
          static_cast<int>(result->get_int("depths_tried", 0));
      if (const Value* stream = row.find("stream"))
        entry.stream = stream_from_json(*stream);
      synth_cache_store(key, std::move(entry));
      ++loaded;
    }
  }

  if (const Value* rows = doc.find("qfactor")) {
    for (const Value& row : rows->as_array()) {
      const QFactorCacheKey key = qfactor_key_from_json(*row.find("key"));
      const Value* result = row.find("result");
      QC_CHECK_MSG(result != nullptr, "synth snapshot: row lacks result");
      QFactorResult entry;
      const Value* circuit = result->find("circuit");
      QC_CHECK_MSG(circuit != nullptr, "synth snapshot: qfactor row lacks circuit");
      entry.circuit = circuit_from_json(*circuit);
      entry.hs_distance = result->get_number("hs", 1.0);
      entry.sweeps = static_cast<int>(result->get_int("sweeps", 0));
      entry.converged = result->get_bool("converged", false);
      synth_cache_store(key, std::move(entry));
      ++loaded;
    }
  }

  return loaded;
}

std::size_t synth_cache_save(const std::string& dir) {
  QC_CHECK_MSG(!dir.empty(), "synth_cache_save: empty directory");
  const SynthCacheStats before = synth_cache_stats();
  const std::string path = join_path(dir, kSynthCacheSnapshotFile);
  common::atomic_write_file(path, synth_cache_serialize());
  static obs::Counter& saved = obs::counter("synth.cache.disk_saved");
  saved.add(before.entries);
  QC_LOG_INFO("synth", "snapshotted %zu synthesis-cache entries to %s",
              before.entries, path.c_str());
  return before.entries;
}

std::size_t synth_cache_load(const std::string& dir) {
  if (dir.empty()) return 0;
  const std::string path = join_path(dir, kSynthCacheSnapshotFile);
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return 0;  // no snapshot yet: clean cold start
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    const std::size_t loaded = synth_cache_deserialize(buffer.str());
    static obs::Counter& counter = obs::counter("synth.cache.disk_loaded");
    counter.add(loaded);
    QC_LOG_INFO("synth", "warm-started %zu synthesis-cache entries from %s",
                loaded, path.c_str());
    return loaded;
  } catch (const common::Error& e) {
    QC_LOG_WARN("synth", "ignoring unreadable synthesis-cache snapshot %s: %s",
                path.c_str(), e.what());
    return 0;
  }
}

}  // namespace qc::synth
