#include "synth/qfactor.hpp"

#include <bit>
#include <cmath>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "linalg/kernels.hpp"
#include "metrics/process.hpp"
#include "obs/obs.hpp"
#include "synth/cache.hpp"
#include "transpile/decompose.hpp"
#include "transpile/euler.hpp"

namespace qc::synth {

using ir::Gate;
using ir::GateKind;
using ir::QuantumCircuit;
using linalg::cplx;
using linalg::Matrix;

bool qfactor_incremental_default() {
  static const bool enabled = common::env_flag("QAPPROX_SYNTH_INCREMENTAL", true);
  return enabled;
}

namespace {

/// Hermitian 2x2 eigendecomposition: returns eigenvalues (ascending) and
/// orthonormal eigenvector columns in q.
void eig_hermitian_2x2(const Matrix& h, double& l0, double& l1, Matrix& q) {
  const double a = h(0, 0).real();
  const double d = h(1, 1).real();
  const cplx b = h(0, 1);
  const double tr = a + d;
  const double det = a * d - std::norm(b);
  const double disc = std::sqrt(std::max(0.0, tr * tr / 4.0 - det));
  l0 = tr / 2.0 - disc;
  l1 = tr / 2.0 + disc;

  q = Matrix::identity(2);
  if (std::abs(b) < 1e-300 && std::abs(a - d) < 1e-300) return;  // scalar
  // Eigenvector for l1: (b, l1 - a) or (l1 - d, conj(b)).
  cplx v0 = b, v1 = cplx{l1 - a, 0.0};
  if (std::abs(v0) + std::abs(v1) < 1e-150) {
    v0 = cplx{l1 - d, 0.0};
    v1 = std::conj(b);
  }
  const double n = std::sqrt(std::norm(v0) + std::norm(v1));
  if (n < 1e-150) return;
  v0 /= n;
  v1 /= n;
  // q columns: [v_perp, v] with eigenvalues (l0, l1).
  q(0, 0) = -std::conj(v1);
  q(1, 0) = std::conj(v0);
  q(0, 1) = v0;
  q(1, 1) = v1;
}

QFactorCacheKey make_cache_key(const QuantumCircuit& structure, const Matrix& target,
                               const QFactorOptions& options) {
  QFactorCacheKey key;
  key.target_fp = target.fingerprint();
  key.structure_fp = structure.fingerprint();  // gates AND starting angles
  key.dim = target.rows();
  key.num_qubits = structure.num_qubits();
  key.tolerance_bits = std::bit_cast<std::uint64_t>(options.tolerance);
  key.success_threshold_bits = std::bit_cast<std::uint64_t>(options.success_threshold);
  key.max_sweeps = options.max_sweeps;
  key.incremental = options.incremental;
  return key;
}

QFactorResult run_qfactor(const QuantumCircuit& structure, const Matrix& target,
                          const QFactorOptions& options) {
  const QuantumCircuit basis =
      transpile::decompose_to_cx_u3(structure).unitary_part();
  const int n = basis.num_qubits();
  const std::size_t dim = std::size_t{1} << n;
  QC_CHECK_MSG(target.rows() == dim && target.cols() == dim,
               "target dimension must match circuit width");
  const double d = static_cast<double>(dim);

  // Mutable gate matrices (U3 slots get rewritten; CX stays).
  std::vector<Matrix> mats;
  std::vector<const Gate*> gates;
  for (const Gate& g : basis.gates()) {
    mats.push_back(g.matrix());
    gates.push_back(&g);
  }
  const std::size_t m = mats.size();

  QFactorResult result;
  static obs::Histogram& opt_ns = obs::histogram("synth.qfactor_ns");
  obs::Span span("synth.qfactor", &opt_ns);
  // Destroyed before `span`, so the args land on it. The residual histogram
  // stores hs_distance * 1e12 (log2 buckets then read as order of magnitude:
  // bucket b covers residuals around 2^b * 1e-12).
  struct Tally {
    QFactorResult& r;
    obs::Span& s;
    ~Tally() {
      static obs::Counter& sweeps = obs::counter("synth.qfactor.sweeps");
      static obs::Histogram& residual = obs::histogram("synth.qfactor.residual_e12");
      sweeps.add(static_cast<std::uint64_t>(r.sweeps));
      if (obs::timing_enabled() && r.hs_distance >= 0.0)
        residual.record(static_cast<std::uint64_t>(r.hs_distance * 1e12));
      if (s.active()) {
        s.arg("sweeps", r.sweeps);
        s.arg("residual", r.hs_distance);
        s.arg("converged", static_cast<int>(r.converged));
      }
    }
  } tally{result, span};
  result.circuit = basis;
  if (m == 0) {
    result.hs_distance = metrics::hs_distance(target, Matrix::identity(dim));
    return result;
  }

  const Matrix t_dag = target.adjoint();
  double prev_overlap = -1.0;

  std::vector<Matrix> suffix(m + 1);  // suffix[k] = O_{m-1} ... O_k (embedded)
  Matrix lmat;  // incremental path: B_k · T†, advanced by left_apply
  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    // Sweeps improve monotonically, so stopping after any whole sweep still
    // returns a valid (just less converged) circuit.
    if (options.deadline.expired()) {
      result.timed_out = true;
      break;
    }
    ++result.sweeps;

    // suffix[k] = product of ops k..m-1 applied after slot k-1.
    suffix[m] = Matrix::identity(dim);
    for (std::size_t k = m; k-- > 0;) {
      suffix[k] = suffix[k + 1];
      linalg::right_apply(suffix[k], mats[k], gates[k]->qubits);
      // right-apply builds suffix[k] = suffix[k+1] * embed(O_k)  (= O_{m-1}..O_k
      // when read as an operator product).
    }

    double overlap = 0.0;
    if (options.incremental) {
      // Forward pass over L = B T† (L_0 = T†); each 1q slot's environment
      // M = L · suffix[k+1] is only needed on the 2x2 block the gate sees,
      //   K^T(i, j) = sum_base M(base|i·bit, base|j·bit),
      // extracted from L and the suffix in O(dim²) without forming M. The
      // slot update itself is then an O(dim²) row op on L — no dim³ GEMM
      // anywhere in the sweep.
      lmat = t_dag;
      for (std::size_t k = 0; k < m; ++k) {
        if (gates[k]->qubits.size() == 1) {
          const Matrix& s = suffix[k + 1];
          const int qb = gates[k]->qubits[0];
          const std::size_t bit = std::size_t{1} << qb;
          Matrix kt(2, 2);
          for (std::size_t base = 0; base < dim; ++base) {
            if (base & bit) continue;
            const cplx* lrow0 = lmat.data() + base * dim;
            const cplx* lrow1 = lmat.data() + (base | bit) * dim;
            cplx k00{0.0, 0.0}, k01{0.0, 0.0}, k10{0.0, 0.0}, k11{0.0, 0.0};
            for (std::size_t j = 0; j < dim; ++j) {
              const cplx s0 = s(j, base);
              const cplx s1 = s(j, base | bit);
              k00 += lrow0[j] * s0;
              k01 += lrow0[j] * s1;
              k10 += lrow1[j] * s0;
              k11 += lrow1[j] * s1;
            }
            kt(0, 0) += k00;
            kt(0, 1) += k01;
            kt(1, 0) += k10;
            kt(1, 1) += k11;
          }
          mats[k] = best_unitary_for_environment(kt);
        }
        linalg::left_apply(lmat, mats[k], gates[k]->qubits);
      }
      // L_m = V·T†, so the overlap trace costs O(dim).
      cplx acc{0.0, 0.0};
      for (std::size_t i = 0; i < dim; ++i) acc += lmat(i, i);
      overlap = std::abs(acc) / d;
    } else {
      // Dense oracle path: two GEMMs per slot, one for the overlap.
      Matrix b = Matrix::identity(dim);
      for (std::size_t k = 0; k < m; ++k) {
        if (gates[k]->qubits.size() == 1) {
          // M = B T† A with A = suffix[k+1]; Tr(T† A U_k B) = Tr(U_emb M).
          Matrix mmat = b * t_dag * suffix[k + 1];
          // Environment K[a][b] = sum_rest M[(b,rest),(a,rest)]; Tr = Tr(U K^T).
          const int qb = gates[k]->qubits[0];
          const std::size_t bit = std::size_t{1} << qb;
          Matrix kt(2, 2);  // K^T directly: kt[b][a] = K[a][b]
          for (std::size_t base = 0; base < dim; ++base) {
            if (base & bit) continue;
            kt(0, 0) += mmat(base, base);
            kt(0, 1) += mmat(base, base | bit);
            kt(1, 0) += mmat(base | bit, base);
            kt(1, 1) += mmat(base | bit, base | bit);
          }
          // kt currently holds K[a][b] at (b? ...) — M[(b,rest),(a,rest)] with
          // row index carrying b: kt(row=b, col=a) = K[a][b] = (K^T)(b, a). OK.
          mats[k] = best_unitary_for_environment(kt);
        }
        linalg::left_apply(b, mats[k], gates[k]->qubits);
      }

      // b now holds the full circuit unitary; overlap = |Tr(T† V)|.
      cplx acc{0.0, 0.0};
      const Matrix full = t_dag * b;
      for (std::size_t i = 0; i < dim; ++i) acc += full(i, i);
      overlap = std::abs(acc) / d;
    }

    const double fid = std::min(1.0, overlap);
    result.hs_distance = std::sqrt(std::max(0.0, 1.0 - fid * fid));
    if (result.hs_distance < options.success_threshold) {
      result.converged = true;
      break;
    }
    if (overlap - prev_overlap < options.tolerance && sweep > 0) break;
    prev_overlap = overlap;
  }

  // Rebuild the circuit with the optimized single-qubit gates.
  QuantumCircuit out(n, structure.name());
  for (std::size_t k = 0; k < m; ++k) {
    if (gates[k]->qubits.size() == 1) {
      out.append(transpile::u3_from_matrix(mats[k], gates[k]->qubits[0]));
    } else {
      out.append(*gates[k]);
    }
  }
  result.circuit = std::move(out);
  result.hs_distance = metrics::hs_distance(target, result.circuit.to_unitary());
  result.converged = result.hs_distance < options.success_threshold;
  return result;
}

}  // namespace

Matrix best_unitary_for_environment(const Matrix& k) {
  QC_CHECK(k.rows() == 2 && k.cols() == 2);
  // SVD K = P S Q†; |Tr(U K)| is maximized by U = Q P†.
  const Matrix ktk = k.adjoint() * k;
  double s0sq, s1sq;
  Matrix q;
  eig_hermitian_2x2(ktk, s0sq, s1sq, q);
  const double s1 = std::sqrt(std::max(0.0, s1sq));
  const double s0 = std::sqrt(std::max(0.0, s0sq));

  // P columns: p_i = K q_i / s_i; complete orthonormally when singular.
  Matrix p(2, 2);
  auto set_col = [&](int col, cplx x0, cplx x1) {
    p(0, col) = x0;
    p(1, col) = x1;
  };
  // Column 1 (largest singular value) first.
  if (s1 > 1e-150) {
    const cplx x0 = (k(0, 0) * q(0, 1) + k(0, 1) * q(1, 1)) / s1;
    const cplx x1 = (k(1, 0) * q(0, 1) + k(1, 1) * q(1, 1)) / s1;
    set_col(1, x0, x1);
  } else {
    set_col(1, cplx{1, 0}, cplx{0, 0});  // K ~ 0: any unitary works
  }
  if (s0 > 1e-12 * std::max(1.0, s1)) {
    const cplx x0 = (k(0, 0) * q(0, 0) + k(0, 1) * q(1, 0)) / s0;
    const cplx x1 = (k(1, 0) * q(0, 0) + k(1, 1) * q(1, 0)) / s0;
    set_col(0, x0, x1);
  } else {
    // Orthogonal complement of column 1.
    set_col(0, -std::conj(p(1, 1)), std::conj(p(0, 1)));
  }
  Matrix u = q * p.adjoint();
  // Re-unitarize (2x2 Gram-Schmidt): the SVD route accumulates ~1e-7 error,
  // which would compound over sweeps and break the exact ZYZ rebuild.
  {
    double n0 = std::sqrt(std::norm(u(0, 0)) + std::norm(u(1, 0)));
    QC_CHECK_MSG(n0 > 1e-12, "degenerate environment update");
    u(0, 0) /= n0;
    u(1, 0) /= n0;
    const cplx proj = std::conj(u(0, 0)) * u(0, 1) + std::conj(u(1, 0)) * u(1, 1);
    u(0, 1) -= proj * u(0, 0);
    u(1, 1) -= proj * u(1, 0);
    const double n1 = std::sqrt(std::norm(u(0, 1)) + std::norm(u(1, 1)));
    QC_CHECK_MSG(n1 > 1e-12, "degenerate environment update");
    u(0, 1) /= n1;
    u(1, 1) /= n1;
  }
  QC_CHECK_MSG(u.is_unitary(1e-9), "environment update lost unitarity");
  return u;
}

QFactorResult qfactor_optimize(const QuantumCircuit& structure, const Matrix& target,
                               const QFactorOptions& options) {
  if (!options.use_cache) return run_qfactor(structure, target, options);

  const QFactorCacheKey key = make_cache_key(structure, target, options);
  if (auto hit = synth_cache_lookup(key)) return std::move(*hit);

  QFactorResult result = run_qfactor(structure, target, options);
  if (!result.timed_out) synth_cache_store(key, result);
  return result;
}

}  // namespace qc::synth
