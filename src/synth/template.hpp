// Parameterized circuit templates (ansätze) for numerical synthesis.
//
// A TemplateCircuit is a fixed gate *structure* — CX gates at fixed
// positions, U3 gates whose three angles are free parameters — exactly the
// search space QSearch/QFast explore. The unitary builder here is the hot
// loop of synthesis (called hundreds of thousands of times per search), so
// it uses dedicated row-operation kernels with no per-gate heap allocation.
// The same row/column kernels are exported (rowops) for the analytic
// gradient sweep in cost.cpp, which walks the op list directly via ops().
#pragma once

#include <vector>

#include "ir/circuit.hpp"
#include "linalg/matrix.hpp"

namespace qc::synth {

/// The four entries of U3(theta, phi, lambda) as a dense 2x2:
///   [[g00, g01], [g10, g11]].
struct U3Entries {
  linalg::cplx g00, g01, g10, g11;
};

/// Entries of U3(theta, phi, lambda) — the single source of the gate's
/// phase convention, shared by the unitary builder and the gradient sweep.
U3Entries u3_entries(double theta, double phi, double lambda);

namespace rowops {

/// m := embed(U3 on q) * m  (row mixing).
void left_u3(linalg::Matrix& m, int q, const U3Entries& g);
/// m := embed(CX) * m  (row swaps in the control=1 half-space).
void left_cx(linalg::Matrix& m, int control, int target);
/// m := m * embed(U3 on q)  (column mixing).
void right_u3(linalg::Matrix& m, int q, const U3Entries& g);
/// m := m * embed(CX)  (column swaps; CX is its own transpose/inverse).
void right_cx(linalg::Matrix& m, int control, int target);

}  // namespace rowops

class TemplateCircuit {
 public:
  explicit TemplateCircuit(int num_qubits);

  /// One structural slot: a fixed CX or a parameterized U3.
  struct Op {
    bool is_cx;
    int a;             // U3 qubit, or CX control
    int b;             // CX target (unused for U3)
    int param_offset;  // first of 3 params (U3 only)
  };

  int num_qubits() const { return num_qubits_; }
  /// Total free parameters (3 per U3 slot).
  int num_params() const { return 3 * num_u3_; }
  /// Number of CX gates in the structure.
  std::size_t cx_count() const { return num_cx_; }
  std::size_t num_ops() const { return ops_.size(); }
  /// The structural slots, in application order (op 0 acts first).
  const std::vector<Op>& ops() const { return ops_; }

  /// Appends a parameterized U3 on qubit q.
  void add_u3(int q);
  /// Appends a fixed CX.
  void add_cx(int control, int target);
  /// Appends the QSearch expansion block: CX(control, target) then a U3 on
  /// each of the two qubits.
  void add_qsearch_block(int control, int target);
  /// Appends the QFast generic two-qubit block: {U3 pair, CX} x3 followed by
  /// a final U3 pair — enough structure to express any SU(4) element.
  void add_generic_block(int a, int b);

  /// U3 layer on every qubit (the root of a QSearch search).
  static TemplateCircuit u3_layer(int num_qubits);

  /// Builds the full unitary for the given parameter vector into `out`
  /// (resized if needed). params.size() must equal num_params().
  void unitary(const std::vector<double>& params, linalg::Matrix& out) const;

  /// Concrete circuit with the parameters bound.
  ir::QuantumCircuit instantiate(const std::vector<double>& params) const;

  /// Reasonable starting parameters: zero angles (U3 = identity).
  std::vector<double> identity_params() const;

  /// Order-dependent structural hash (op kinds and operands; parameters are
  /// free, so they do not contribute). Keys the synthesis cache.
  std::uint64_t fingerprint() const;

 private:
  int num_qubits_;
  int num_u3_ = 0;
  std::size_t num_cx_ = 0;
  std::vector<Op> ops_;
};

}  // namespace qc::synth
