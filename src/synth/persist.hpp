// Disk persistence for the process-wide synthesis result cache.
//
// Synthesis results are deterministic in their keys, so they are safe to
// reuse across process lifetimes — exactly what a restarted qapprox server
// needs to avoid cold-starting its most expensive cache. A snapshot is one
// JSON document (<dir>/synth_cache.json) holding every in-memory entry of
// all three result kinds in FIFO order:
//
//   * 64-bit key fields (fingerprints, double bit patterns, seeds) are hex
//     strings — JSON numbers are doubles and silently lose bits past 2^53.
//   * Circuits serialize gate-by-gate with %.17g parameters, which
//     round-trip every finite double exactly, so a loaded entry is
//     bit-identical to the run that produced it.
//
// Writes are crash-safe (common::atomic_write_file: stage + rename); loads
// of a missing file are a clean no-op and a corrupt/mismatched file warns
// and loads nothing rather than failing the host. The server snapshots on
// shutdown and warm-starts on boot via QAPPROX_SYNTH_CACHE_DIR; run-to-
// completion drivers can do the same through the env hook.
#pragma once

#include <cstddef>
#include <string>

namespace qc::synth {

/// The snapshot filename inside a cache directory.
inline constexpr const char* kSynthCacheSnapshotFile = "synth_cache.json";

/// QAPPROX_SYNTH_CACHE_DIR, read once ("" when unset: persistence off).
const std::string& synth_cache_dir_env();

/// Serializes the whole in-memory cache to <dir>/synth_cache.json via an
/// atomic tmp+rename. Returns the number of entries written (also counted on
/// the synth.cache.disk_saved counter). Throws common::Error when the file
/// cannot be written. The directory must exist.
std::size_t synth_cache_save(const std::string& dir);

/// Loads a snapshot into the in-memory cache (entries merge through
/// synth_cache_store: first result wins, FIFO capacity applies). Returns the
/// number of entries loaded; a missing file returns 0, and a corrupt or
/// version-mismatched file warns and returns 0 instead of throwing. Counted
/// on synth.cache.disk_loaded.
std::size_t synth_cache_load(const std::string& dir);

/// Serialize/deserialize without touching the filesystem (tests, wire).
std::string synth_cache_serialize();
std::size_t synth_cache_deserialize(const std::string& text);

}  // namespace qc::synth
