// Numerical optimizers for the synthesis cost (the role SciPy's BFGS and
// COBYLA play in the paper's toolchain).
//
//  * L-BFGS with Armijo backtracking — the workhorse; quasi-Newton over the
//    smooth fidelity-gap objective.
//  * Nelder–Mead — derivative-free fallback (COBYLA stand-in), used by the
//    optimizer-choice ablation.
//  * Multistart — wraps either with deterministic random restarts; circuit
//    cost landscapes are multimodal and restarts matter.
#pragma once

#include <functional>
#include <vector>

#include "common/deadline.hpp"
#include "common/rng.hpp"

namespace qc::synth {

using CostFn = std::function<double(const std::vector<double>&)>;
using GradFn = std::function<void(const std::vector<double>&, std::vector<double>&)>;

struct OptimizeOptions {
  int max_iterations = 120;
  double tolerance = 1e-12;  // stop when improvement/gradient falls below
  int lbfgs_memory = 8;
  /// Polled once per iteration; on expiry the optimizer returns the best
  /// point reached so far (a valid, if less converged, result).
  common::Deadline deadline;
};

struct OptimizeResult {
  std::vector<double> params;
  double value = 0.0;
  int iterations = 0;
  int evaluations = 0;
};

/// Quasi-Newton minimization from `x0`.
OptimizeResult lbfgs_minimize(const CostFn& f, const GradFn& grad,
                              const std::vector<double>& x0,
                              const OptimizeOptions& options = {});

/// Derivative-free simplex minimization from `x0`.
OptimizeResult nelder_mead_minimize(const CostFn& f, const std::vector<double>& x0,
                                    const OptimizeOptions& options = {});

struct MultistartOptions {
  OptimizeOptions inner;
  int num_starts = 4;
  /// First start is x0 itself; the rest perturb/randomize angles in
  /// [-pi, pi). Stops early when `good_enough` is reached.
  double good_enough = 1e-14;
  bool use_nelder_mead = false;
};

/// Runs the inner optimizer from x0 and from random restarts; returns best.
OptimizeResult multistart_minimize(const CostFn& f, const GradFn& grad,
                                   const std::vector<double>& x0, common::Rng& rng,
                                   const MultistartOptions& options = {});

}  // namespace qc::synth
