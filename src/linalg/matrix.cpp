#include "linalg/matrix.hpp"

#include <bit>
#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace qc::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, cplx{0.0, 0.0}) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::initializer_list<cplx> values)
    : Matrix(rows, cols) {
  QC_CHECK_MSG(values.size() == rows * cols, "initializer size must equal rows*cols");
  std::size_t i = 0;
  for (const cplx& v : values) data_[i++] = v;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = cplx{1.0, 0.0};
  return m;
}

Matrix Matrix::zeros(std::size_t rows, std::size_t cols) { return Matrix(rows, cols); }

Matrix Matrix::operator+(const Matrix& rhs) const {
  Matrix out = *this;
  out += rhs;
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  Matrix out = *this;
  out -= rhs;
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  QC_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  QC_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix Matrix::operator*(cplx scalar) const {
  Matrix out = *this;
  out *= scalar;
  return out;
}

Matrix& Matrix::operator*=(cplx scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

Matrix operator*(cplx scalar, const Matrix& m) { return m * scalar; }

Matrix Matrix::operator*(const Matrix& rhs) const {
  QC_CHECK_MSG(cols_ == rhs.rows_, "GEMM dimension mismatch");
  Matrix out(rows_, rhs.cols_);
  // ikj loop order: streams rhs rows, accumulates into out rows (cache friendly).
  for (std::size_t i = 0; i < rows_; ++i) {
    cplx* out_row = out.data_.data() + i * out.cols_;
    for (std::size_t k = 0; k < cols_; ++k) {
      const cplx a = data_[i * cols_ + k];
      if (a == cplx{0.0, 0.0}) continue;
      const cplx* rhs_row = rhs.data_.data() + k * rhs.cols_;
      for (std::size_t j = 0; j < rhs.cols_; ++j) out_row[j] += a * rhs_row[j];
    }
  }
  return out;
}

Matrix Matrix::adjoint() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = std::conj((*this)(r, c));
  return out;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

Matrix Matrix::conjugate() const {
  Matrix out = *this;
  for (auto& v : out.data_) v = std::conj(v);
  return out;
}

cplx Matrix::trace() const {
  QC_CHECK(rows_ == cols_);
  cplx t{0.0, 0.0};
  for (std::size_t i = 0; i < rows_; ++i) t += (*this)(i, i);
  return t;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (const auto& v : data_) s += std::norm(v);
  return std::sqrt(s);
}

double Matrix::max_abs_diff(const Matrix& rhs) const {
  QC_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    m = std::max(m, std::abs(data_[i] - rhs.data_[i]));
  return m;
}

bool Matrix::is_unitary(double tol) const {
  if (rows_ != cols_) return false;
  const Matrix probe = adjoint() * (*this);
  return probe.max_abs_diff(identity(rows_)) <= tol;
}

bool Matrix::is_hermitian(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = r; c < cols_; ++c)
      if (std::abs((*this)(r, c) - std::conj((*this)(c, r))) > tol) return false;
  return true;
}

std::vector<cplx> Matrix::apply(const std::vector<cplx>& x) const {
  QC_CHECK(x.size() == cols_);
  std::vector<cplx> y(rows_, cplx{0.0, 0.0});
  for (std::size_t r = 0; r < rows_; ++r) {
    const cplx* row = data_.data() + r * cols_;
    cplx acc{0.0, 0.0};
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

std::uint64_t Matrix::fingerprint() const {
  using common::hash_combine;
  std::uint64_t h = hash_combine(0xa17c9d3e5b82f641ULL, rows_);
  h = hash_combine(h, cols_);
  for (const cplx& v : data_) {
    h = hash_combine(h, std::bit_cast<std::uint64_t>(v.real()));
    h = hash_combine(h, std::bit_cast<std::uint64_t>(v.imag()));
  }
  return h;
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed;
  for (std::size_t r = 0; r < rows_; ++r) {
    os << "[ ";
    for (std::size_t c = 0; c < cols_; ++c) {
      const cplx v = (*this)(r, c);
      os << v.real() << (v.imag() < 0 ? "-" : "+") << std::abs(v.imag()) << "i ";
    }
    os << "]\n";
  }
  return os.str();
}

Matrix kron(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows() * b.rows(), a.cols() * b.cols());
  for (std::size_t ar = 0; ar < a.rows(); ++ar)
    for (std::size_t ac = 0; ac < a.cols(); ++ac) {
      const cplx av = a(ar, ac);
      if (av == cplx{0.0, 0.0}) continue;
      for (std::size_t br = 0; br < b.rows(); ++br)
        for (std::size_t bc = 0; bc < b.cols(); ++bc)
          out(ar * b.rows() + br, ac * b.cols() + bc) = av * b(br, bc);
    }
  return out;
}

cplx inner(const std::vector<cplx>& x, const std::vector<cplx>& y) {
  QC_CHECK(x.size() == y.size());
  cplx s{0.0, 0.0};
  for (std::size_t i = 0; i < x.size(); ++i) s += std::conj(x[i]) * y[i];
  return s;
}

double norm(const std::vector<cplx>& x) {
  double s = 0.0;
  for (const auto& v : x) s += std::norm(v);
  return std::sqrt(s);
}

}  // namespace qc::linalg
