// Matrix exponential, used to build exact TFIM propagators
// (U(t) = exp(-i H t)) as noise-free references.
#pragma once

#include "linalg/matrix.hpp"

namespace qc::linalg {

/// exp(A) by scaling-and-squaring with a [13/13] Padé approximant
/// (Higham 2005). A must be square; sized for the <=64x64 matrices used here.
Matrix expm(const Matrix& a);

/// exp(-i * H * t) for Hermitian H (checked), via expm.
Matrix expm_hermitian_propagator(const Matrix& h, double t);

/// Solves A X = B by partial-pivot LU (helper for the Padé solve; exposed for
/// tests). A is square and must be non-singular.
Matrix solve(const Matrix& a, const Matrix& b);

}  // namespace qc::linalg
