#include "linalg/factories.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qc::linalg {

Matrix pauli_i() { return Matrix(2, 2, {{1, 0}, {0, 0}, {0, 0}, {1, 0}}); }
Matrix pauli_x() { return Matrix(2, 2, {{0, 0}, {1, 0}, {1, 0}, {0, 0}}); }
Matrix pauli_y() { return Matrix(2, 2, {{0, 0}, {0, -1}, {0, 1}, {0, 0}}); }
Matrix pauli_z() { return Matrix(2, 2, {{1, 0}, {0, 0}, {0, 0}, {-1, 0}}); }

Matrix hadamard2() {
  const double s = 1.0 / std::sqrt(2.0);
  return Matrix(2, 2, {{s, 0}, {s, 0}, {s, 0}, {-s, 0}});
}

Matrix pauli_string(const std::string& s) {
  QC_CHECK(!s.empty());
  Matrix out(1, 1, {{1, 0}});
  for (char ch : s) {
    Matrix p;
    switch (ch) {
      case 'I': p = pauli_i(); break;
      case 'X': p = pauli_x(); break;
      case 'Y': p = pauli_y(); break;
      case 'Z': p = pauli_z(); break;
      default: QC_CHECK_MSG(false, std::string("bad Pauli char: ") + ch);
    }
    out = kron(out, p);
  }
  return out;
}

Matrix random_unitary(std::size_t dim, common::Rng& rng) {
  QC_CHECK(dim > 0);
  // Ginibre ensemble.
  Matrix g(dim, dim);
  for (std::size_t r = 0; r < dim; ++r)
    for (std::size_t c = 0; c < dim; ++c) g(r, c) = cplx{rng.normal(), rng.normal()};

  // Modified Gram–Schmidt QR; unitary part with R-diagonal phase fix gives
  // the Haar measure.
  Matrix q(dim, dim);
  std::vector<cplx> col(dim);
  for (std::size_t c = 0; c < dim; ++c) {
    for (std::size_t r = 0; r < dim; ++r) col[r] = g(r, c);
    for (std::size_t prev = 0; prev < c; ++prev) {
      cplx proj{0.0, 0.0};
      for (std::size_t r = 0; r < dim; ++r) proj += std::conj(q(r, prev)) * col[r];
      for (std::size_t r = 0; r < dim; ++r) col[r] -= proj * q(r, prev);
    }
    double nrm = 0.0;
    for (const auto& v : col) nrm += std::norm(v);
    nrm = std::sqrt(nrm);
    QC_CHECK_MSG(nrm > 1e-12, "degenerate Ginibre sample");
    // Phase correction: divide by the phase of the diagonal entry of R,
    // which here is the inner product of q-column with the original column.
    for (std::size_t r = 0; r < dim; ++r) q(r, c) = col[r] / nrm;
  }
  // Apply random diagonal phases to wash out the Gram–Schmidt sign convention.
  for (std::size_t c = 0; c < dim; ++c) {
    const double phi = rng.uniform(0.0, 2.0 * 3.141592653589793);
    const cplx ph{std::cos(phi), std::sin(phi)};
    for (std::size_t r = 0; r < dim; ++r) q(r, c) *= ph;
  }
  return q;
}

Matrix random_hermitian(std::size_t dim, common::Rng& rng) {
  Matrix h(dim, dim);
  for (std::size_t r = 0; r < dim; ++r) {
    h(r, r) = cplx{rng.normal(), 0.0};
    for (std::size_t c = r + 1; c < dim; ++c) {
      const cplx v{rng.normal(), rng.normal()};
      h(r, c) = v;
      h(c, r) = std::conj(v);
    }
  }
  return h;
}

}  // namespace qc::linalg
