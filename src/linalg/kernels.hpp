// Specialized state-vector gate kernels, the SIMD dispatch layer above them,
// and the cache-blocked matrix-apply paths used by the density-matrix engine.
//
// The generic apply_gate_inplace in embed.hpp walks all 2^n basis indices
// with a `base & mask` skip-branch and heap-allocates scatter/scratch
// buffers on every call. Transpiled circuits in this repository are almost
// entirely {CX, U3}, plus diagonal phase branches from noise channels and —
// since k<=4 step fusion — dense 8x8/16x16 blocks accumulated at compile
// time, so the shapes that dominate every trajectory shot and density-matrix
// step are known in advance. The kernels here enumerate only the 2^(n-k)
// cosets directly (branch-free index reconstruction, no allocation) and
// exploit matrix structure:
//
//   OneQDiag      diagonal 2x2 (Z / RZ / P / phase-damping Kraus branches)
//   OneQGeneral   dense 2x2 (U3, amplitude-damping Kraus, ...)
//   TwoQDiag      diagonal 4x4 (CZ, CP, RZZ, ZZ-crosstalk)
//   TwoQPermPhase permutation-phase 4x4 (CX, SWAP, CY): one nonzero per
//                 row/column; the pure-swap case (CX) moves amplitudes with
//                 zero complex multiplies
//   TwoQGeneral   dense 4x4, coset loop ordered so the four amplitude
//                 streams advance sequentially through memory
//   ThreeQDiag /  diagonal 8x8 / 16x16 (fused RZ/CZ/phase chains)
//   FourQDiag
//   ThreeQGeneral dense 8x8 / 16x16 (k=3/4 fused gate blocks): per-coset
//   FourQGeneral  gather -> vectorized mat-vec -> scatter
//   GenericK      anything wider (k > 4) — delegated to the generic path
//
// On top of the shape dispatch sits a one-time runtime ISA dispatch: every
// unit-stride kernel has explicitly vectorized AVX2+FMA and AVX-512 variants
// (x86, selected by CPUID), a NEON variant (aarch64), and the scalar
// reference. A single portable binary picks the widest supported ISA at
// startup; QAPPROX_SIMD=scalar|avx2|avx512|neon overrides the choice (for
// sanitizer runs, pinned-ISA CI baselines, and A/B benchmarking), and
// unsupported requests fall back with a warning. Vector variants reassociate
// the complex arithmetic (fused multiply-add, lane-wise sums), so they agree
// with the scalar path to ~1e-12 rather than bit-for-bit; the scalar path
// itself accumulates in the same order as the generic path (ascending column
// index) and stays bit-identical to apply_gate_inplace. RNG draw order is never affected — the dispatch only
// changes arithmetic inside a kernel application.
//
// Wide states additionally slice the coset loop across the process thread
// pool (common::parallel_for, OpenMP-free) once the span holds at least
// `ApplyOptions::parallel_threshold` amplitudes; slices write disjoint
// amplitudes, so threaded results are bit-identical to serial ones at any
// fixed ISA.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace qc::linalg {

/// Which specialized kernel serves an operator of a given shape.
enum class KernelKind {
  OneQDiag,
  OneQGeneral,
  TwoQDiag,
  TwoQPermPhase,
  TwoQGeneral,
  ThreeQDiag,
  ThreeQGeneral,
  FourQDiag,
  FourQGeneral,
  GenericK,
};

/// Stable lowercase label ("1q_diag", "cx_perm", ...) for reports.
const char* kernel_kind_name(KernelKind kind);

/// Per-kernel dispatch tallies; recorded per CompiledCircuit and surfaced in
/// RunRecord so benchmarks can report which kernels a run actually hit.
struct KernelCounts {
  std::size_t oneq_diag = 0;
  std::size_t oneq_general = 0;
  std::size_t twoq_diag = 0;
  std::size_t twoq_perm_phase = 0;
  std::size_t twoq_general = 0;
  std::size_t threeq_diag = 0;
  std::size_t threeq_general = 0;
  std::size_t fourq_diag = 0;
  std::size_t fourq_general = 0;
  std::size_t generic = 0;

  void add(KernelKind kind);
  std::size_t total() const {
    return oneq_diag + oneq_general + twoq_diag + twoq_perm_phase +
           twoq_general + threeq_diag + threeq_general + fourq_diag +
           fourq_general + generic;
  }
  bool operator==(const KernelCounts&) const = default;
};

/// Classifies an operator matrix (dimension 2^k, k <= 4) by the kernel that
/// will apply it. Structure tests are exact (== 0.0 / == 1.0):
/// gate-construction literals classify to their specialized kernels;
/// numerically-dense matrices (fused products, synthesis results) classify
/// general.
KernelKind classify_kernel(const Matrix& op);

// ---- runtime SIMD dispatch -------------------------------------------------

/// Instruction sets the kernel layer can dispatch to. Scalar is always
/// available and is the bit-identical reference; the vector ISAs are compiled
/// in behind target guards and selected at runtime, so one binary runs on any
/// host.
enum class SimdIsa { Scalar = 0, Avx2, Avx512, Neon };

/// Stable lowercase label ("scalar", "avx2", "avx512", "neon").
const char* simd_isa_name(SimdIsa isa);

/// True when both the binary carries code for `isa` and the running CPU
/// reports support for it. Scalar is always true.
bool simd_isa_supported(SimdIsa isa);

/// Widest ISA supported by this binary on this CPU.
SimdIsa best_supported_simd_isa();

/// Parses a QAPPROX_SIMD value ("scalar", "avx2", "avx512", "neon",
/// case-sensitive). Sets *ok=false (returning Scalar) on anything else.
SimdIsa parse_simd_isa(const std::string& name, bool* ok);

/// Resolves the ISA the dispatch should use for a given QAPPROX_SIMD value
/// (nullptr / empty -> auto-detect widest). Unknown names and supported-but-
/// unavailable requests log a warning and fall back to auto-detection.
/// Pure function of (env_value, CPU) — exposed so tests can exercise the
/// override logic without mutating the cached active ISA.
SimdIsa resolve_simd_isa(const char* env_value);

/// The ISA every kernel application currently dispatches to. Resolved once
/// from QAPPROX_SIMD + CPUID on first use, then cached (a relaxed atomic
/// read per kernel application).
SimdIsa active_simd_isa();

/// Testing/benchmark hook: overrides the active ISA. Unsupported requests
/// clamp to the widest supported ISA. Returns the ISA actually installed.
SimdIsa force_simd_isa(SimdIsa isa);

/// True when this library was compiled with FMA available (QAPPROX_NATIVE on
/// an FMA machine). FMA contraction may round kernel and generic loops
/// differently even at SimdIsa::Scalar.
bool kernels_compiled_with_fma();

/// True when kernel results are guaranteed bit-identical to the generic
/// apply_gate_inplace path: requires the scalar ISA (vector variants
/// reassociate) and no compile-time FMA contraction. The equivalence tests
/// consult this at runtime to pick exact vs ~1e-12 comparison.
bool kernels_bit_exact();

/// Amplitude-count threshold at which dispatch slices the coset loop across
/// the thread pool. 2^14 amplitudes keeps every <=13-qubit trajectory state
/// serial (per-shot parallelism already covers those) while wide reference
/// states fan out.
inline constexpr std::size_t kKernelParallelThreshold = std::size_t{1} << 14;

struct ApplyOptions {
  /// Spans with at least this many amplitudes run the sliced threaded
  /// variant; smaller spans run serially. Tests pin this low to force the
  /// threaded path on small states.
  std::size_t parallel_threshold = kKernelParallelThreshold;
};

/// Dispatch entry point: state := (op on qubits) * state, choosing a
/// specialized kernel by shape and falling back to the generic path for
/// k > 4. Drop-in replacement for apply_gate_inplace.
void apply_operator(std::vector<cplx>& state, const Matrix& op,
                    const std::vector<int>& qubits,
                    const ApplyOptions& options = {});

/// CX with no matrix in sight: swaps the target-flipped amplitude pairs in
/// the control=1 half-space. Zero complex multiplies.
void apply_cx(std::vector<cplx>& state, int control, int target,
              const ApplyOptions& options = {});

/// CZ as a pure sign flip on the |11> quarter-space.
void apply_cz(std::vector<cplx>& state, int a, int b,
              const ApplyOptions& options = {});

/// Diagonal 1q gate diag(d0, d1) on `qubit` (Z/RZ/P without building a
/// Matrix).
void apply_diag1(std::vector<cplx>& state, cplx d0, cplx d1, int qubit,
                 const ApplyOptions& options = {});

/// u := embed(op) * u through the specialized kernels. Cache-blocked: the
/// coset (row-group) loop is outermost and each group transforms a tile of
/// columns at a time, so every memory access is unit-stride along the rows
/// of u instead of striding a full column — the layout that kept the
/// density-matrix conjugation memory-bound. Groups are disjoint row sets, so
/// the group loop threads across the pool for large u. Drop-in replacement
/// for left_apply_inplace.
void left_apply(Matrix& u, const Matrix& op, const std::vector<int>& qubits,
                const ApplyOptions& options = {});

/// u := u * embed(op); rows transform by op^T with contiguous access.
/// Drop-in replacement for right_apply_inplace.
void right_apply(Matrix& u, const Matrix& op, const std::vector<int>& qubits,
                 const ApplyOptions& options = {});

/// accum += weight * (term * embed(op)), transforming each row of `term` by
/// op^T in scratch and accumulating it into `accum` while the row is still
/// cache-hot — the fused final pass of a density-matrix Kraus term
/// (K rho K^dagger accumulated into the channel sum without a separate
/// full-matrix sweep). `term` is left unchanged. All three matrices must be
/// square with identical dimensions.
void right_apply_accumulate(Matrix& accum, const Matrix& term, const Matrix& op,
                            const std::vector<int>& qubits, double weight,
                            const ApplyOptions& options = {});

}  // namespace qc::linalg
