// Specialized state-vector gate kernels and the dispatch layer above them.
//
// The generic apply_gate_inplace in embed.hpp walks all 2^n basis indices
// with a `base & mask` skip-branch and heap-allocates scatter/scratch
// buffers on every call. Transpiled circuits in this repository are almost
// entirely {CX, U3}, plus diagonal phase branches from noise channels, so
// the shapes that dominate every trajectory shot and density-matrix step are
// known in advance. The kernels here enumerate only the 2^(n-k) cosets
// directly (branch-free index reconstruction, no allocation) and exploit
// matrix structure:
//
//   OneQDiag      diagonal 2x2 (Z / RZ / P / phase-damping Kraus branches)
//   OneQGeneral   dense 2x2 (U3, amplitude-damping Kraus, ...)
//   TwoQDiag      diagonal 4x4 (CZ, CP, RZZ, ZZ-crosstalk)
//   TwoQPermPhase permutation-phase 4x4 (CX, SWAP, CY): one nonzero per
//                 row/column; the pure-swap case (CX) moves amplitudes with
//                 zero complex multiplies
//   TwoQGeneral   dense 4x4, coset loop ordered so the four amplitude
//                 streams advance sequentially through memory
//   GenericK      anything wider (k > 2) — delegated to the generic path
//
// For classified shapes the kernels accumulate in the same order as the
// generic path (ascending column index) and only drop exact-zero terms, so
// results are bit-identical to apply_gate_inplace, not merely close.
//
// Wide states additionally slice the coset loop across the process thread
// pool (common::parallel_for, OpenMP-free) once the span holds at least
// `ApplyOptions::parallel_threshold` amplitudes; slices write disjoint
// amplitudes, so threaded results are bit-identical to serial ones.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace qc::linalg {

/// Which specialized kernel serves an operator of a given shape.
enum class KernelKind {
  OneQDiag,
  OneQGeneral,
  TwoQDiag,
  TwoQPermPhase,
  TwoQGeneral,
  GenericK,
};

/// Stable lowercase label ("1q_diag", "cx_perm", ...) for reports.
const char* kernel_kind_name(KernelKind kind);

/// Per-kernel dispatch tallies; recorded per CompiledCircuit and surfaced in
/// RunRecord so benchmarks can report which kernels a run actually hit.
struct KernelCounts {
  std::size_t oneq_diag = 0;
  std::size_t oneq_general = 0;
  std::size_t twoq_diag = 0;
  std::size_t twoq_perm_phase = 0;
  std::size_t twoq_general = 0;
  std::size_t generic = 0;

  void add(KernelKind kind);
  std::size_t total() const {
    return oneq_diag + oneq_general + twoq_diag + twoq_perm_phase +
           twoq_general + generic;
  }
  bool operator==(const KernelCounts&) const = default;
};

/// Classifies an operator matrix (dimension 2^k) by the kernel that will
/// apply it. Structure tests are exact (== 0.0 / == 1.0): gate-construction
/// literals classify to their specialized kernels; numerically-dense
/// matrices (fused products, synthesis results) classify general.
KernelKind classify_kernel(const Matrix& op);

/// True when this library was compiled with FMA available (QAPPROX_NATIVE on
/// an FMA machine). FMA contraction may round kernel and generic loops
/// differently, so the bit-identical guarantee relaxes to ~1e-12 agreement;
/// the equivalence tests consult this at runtime.
bool kernels_compiled_with_fma();

/// Amplitude-count threshold at which dispatch slices the coset loop across
/// the thread pool. 2^14 amplitudes keeps every <=13-qubit trajectory state
/// serial (per-shot parallelism already covers those) while wide reference
/// states fan out.
inline constexpr std::size_t kKernelParallelThreshold = std::size_t{1} << 14;

struct ApplyOptions {
  /// Spans with at least this many amplitudes run the sliced threaded
  /// variant; smaller spans run serially. Tests pin this low to force the
  /// threaded path on small states.
  std::size_t parallel_threshold = kKernelParallelThreshold;
};

/// Dispatch entry point: state := (op on qubits) * state, choosing a
/// specialized kernel by shape and falling back to the generic path for
/// k > 2. Drop-in replacement for apply_gate_inplace.
void apply_operator(std::vector<cplx>& state, const Matrix& op,
                    const std::vector<int>& qubits,
                    const ApplyOptions& options = {});

/// CX with no matrix in sight: swaps the target-flipped amplitude pairs in
/// the control=1 half-space. Zero complex multiplies.
void apply_cx(std::vector<cplx>& state, int control, int target,
              const ApplyOptions& options = {});

/// CZ as a pure sign flip on the |11> quarter-space.
void apply_cz(std::vector<cplx>& state, int a, int b,
              const ApplyOptions& options = {});

/// Diagonal 1q gate diag(d0, d1) on `qubit` (Z/RZ/P without building a
/// Matrix).
void apply_diag1(std::vector<cplx>& state, cplx d0, cplx d1, int qubit,
                 const ApplyOptions& options = {});

/// u := embed(op) * u through the specialized kernels (column-sliced across
/// the pool for large u). Drop-in replacement for left_apply_inplace.
void left_apply(Matrix& u, const Matrix& op, const std::vector<int>& qubits,
                const ApplyOptions& options = {});

/// u := u * embed(op); rows transform by op^T with contiguous access.
/// Drop-in replacement for right_apply_inplace.
void right_apply(Matrix& u, const Matrix& op, const std::vector<int>& qubits,
                 const ApplyOptions& options = {});

}  // namespace qc::linalg
