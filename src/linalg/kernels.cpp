#include "linalg/kernels.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "linalg/embed.hpp"

namespace qc::linalg {

void KernelCounts::add(KernelKind kind) {
  switch (kind) {
    case KernelKind::OneQDiag: ++oneq_diag; return;
    case KernelKind::OneQGeneral: ++oneq_general; return;
    case KernelKind::TwoQDiag: ++twoq_diag; return;
    case KernelKind::TwoQPermPhase: ++twoq_perm_phase; return;
    case KernelKind::TwoQGeneral: ++twoq_general; return;
    case KernelKind::GenericK: ++generic; return;
  }
}

const char* kernel_kind_name(KernelKind kind) {
  switch (kind) {
    case KernelKind::OneQDiag: return "1q_diag";
    case KernelKind::OneQGeneral: return "1q_general";
    case KernelKind::TwoQDiag: return "2q_diag";
    case KernelKind::TwoQPermPhase: return "2q_perm_phase";
    case KernelKind::TwoQGeneral: return "2q_general";
    case KernelKind::GenericK: return "generic";
  }
  return "unknown";
}

KernelKind classify_kernel(const Matrix& op) {
  const std::size_t d = op.rows();
  if (d != op.cols()) return KernelKind::GenericK;
  if (d == 2) {
    return (op(0, 1) == cplx{0.0, 0.0} && op(1, 0) == cplx{0.0, 0.0})
               ? KernelKind::OneQDiag
               : KernelKind::OneQGeneral;
  }
  if (d != 4) return KernelKind::GenericK;
  bool diagonal = true;
  for (std::size_t r = 0; r < 4 && diagonal; ++r)
    for (std::size_t c = 0; c < 4; ++c)
      if (r != c && op(r, c) != cplx{0.0, 0.0}) {
        diagonal = false;
        break;
      }
  if (diagonal) return KernelKind::TwoQDiag;
  // Permutation-phase: exactly one nonzero per row and per column.
  int col_of_row[4];
  int col_uses[4] = {0, 0, 0, 0};
  for (std::size_t r = 0; r < 4; ++r) {
    int nonzeros = 0;
    for (std::size_t c = 0; c < 4; ++c) {
      if (op(r, c) != cplx{0.0, 0.0}) {
        ++nonzeros;
        col_of_row[r] = static_cast<int>(c);
      }
    }
    if (nonzeros != 1) return KernelKind::TwoQGeneral;
    ++col_uses[col_of_row[r]];
  }
  for (int c = 0; c < 4; ++c)
    if (col_uses[c] != 1) return KernelKind::TwoQGeneral;
  return KernelKind::TwoQPermPhase;
}

bool kernels_compiled_with_fma() {
#ifdef __FMA__
  return true;
#else
  return false;
#endif
}

namespace {

constexpr ApplyOptions kSerial{std::numeric_limits<std::size_t>::max()};

void check_span(std::size_t dim, const std::vector<int>& qubits,
                std::size_t op_dim) {
  QC_CHECK_MSG(std::has_single_bit(dim), "span size must be a power of two");
  QC_CHECK(!qubits.empty());
  QC_CHECK_MSG(op_dim == (std::size_t{1} << qubits.size()),
               "operator dimension must be 2^#qubits");
  for (std::size_t i = 0; i < qubits.size(); ++i) {
    QC_CHECK(qubits[i] >= 0);
    QC_CHECK_MSG((std::size_t{1} << qubits[i]) < dim, "qubit index out of range");
    for (std::size_t j = i + 1; j < qubits.size(); ++j)
      QC_CHECK_MSG(qubits[i] != qubits[j], "duplicate qubit index");
  }
}

/// Everything a kernel invocation needs, extracted from the operator once so
/// matrix-apply loops (one kernel run per row/column) pay classification and
/// unpacking a single time.
struct Prepared {
  KernelKind kind = KernelKind::GenericK;
  int q0 = 0, q1 = 0;           // qubit bit positions (q0 = qubits[0])
  std::size_t bit0 = 0, bit1 = 0;
  int lo_pos = 0, hi_pos = 0;   // sorted positions for 2q coset enumeration
  cplx m[16] = {};              // dense entries, row-major
  cplx d[4] = {};               // diagonal entries
  int perm[4] = {0, 1, 2, 3};   // source sub-index per output row
  cplx phase[4] = {};
  bool pure_swap = false;       // one transposition, all phases exactly 1
  int swap_a = 0, swap_b = 0;   // the transposed sub-indices
};

Prepared prepare(const Matrix& op, const std::vector<int>& qubits,
                 std::size_t dim) {
  check_span(dim, qubits, op.rows());
  QC_CHECK(op.rows() == op.cols());
  Prepared p;
  p.kind = classify_kernel(op);
  p.q0 = qubits[0];
  p.bit0 = std::size_t{1} << p.q0;
  const std::size_t sub = op.rows();
  for (std::size_t r = 0; r < sub; ++r)
    for (std::size_t c = 0; c < sub; ++c) p.m[r * sub + c] = op(r, c);
  for (std::size_t r = 0; r < sub; ++r) p.d[r] = op(r, r);
  if (qubits.size() == 2) {
    p.q1 = qubits[1];
    p.bit1 = std::size_t{1} << p.q1;
    p.lo_pos = std::min(p.q0, p.q1);
    p.hi_pos = std::max(p.q0, p.q1);
    if (p.kind == KernelKind::TwoQPermPhase) {
      int moved = 0;
      bool unit_phases = true;
      for (int r = 0; r < 4; ++r) {
        for (int c = 0; c < 4; ++c) {
          if (op(r, c) != cplx{0.0, 0.0}) {
            p.perm[r] = c;
            p.phase[r] = op(r, c);
          }
        }
        if (p.perm[r] != r) ++moved;
        if (p.phase[r] != cplx{1.0, 0.0}) unit_phases = false;
      }
      if (moved == 2 && unit_phases) {
        p.pure_swap = true;
        for (int r = 0; r < 4; ++r)
          if (p.perm[r] != r) {
            p.swap_a = r;
            p.swap_b = p.perm[r];
            break;
          }
      }
    }
  }
  return p;
}

/// Runs body(begin, end) over [0, count), sliced across the thread pool when
/// the span is at least `options.parallel_threshold` amplitudes. Slices touch
/// disjoint cosets, so the threaded result is bit-identical to the serial
/// one.
template <typename Body>
void sliced(std::size_t count, std::size_t span_amps,
            const ApplyOptions& options, const Body& body) {
  if (span_amps < options.parallel_threshold || count < 2) {
    body(std::size_t{0}, count);
    return;
  }
  const std::size_t workers = common::ThreadPool::global().size();
  const std::size_t slices = std::min(count, std::max<std::size_t>(1, workers * 4));
  const std::size_t chunk = (count + slices - 1) / slices;
  common::parallel_for(0, slices, [&](std::size_t s) {
    const std::size_t begin = s * chunk;
    body(begin, std::min(count, begin + chunk));
  });
}

template <bool Unit>
inline std::size_t at(std::size_t i, std::size_t stride) {
  return Unit ? i : i * stride;
}

template <bool Unit>
void run_oneq_diag(const Prepared& p, cplx* data, std::size_t dim,
                   std::size_t stride, const ApplyOptions& options) {
  const int q = p.q0;
  const cplx d0 = p.d[0], d1 = p.d[1];
  sliced(dim, dim, options, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i)
      data[at<Unit>(i, stride)] *= ((i >> q) & 1U) ? d1 : d0;
  });
}

template <bool Unit>
void run_oneq_general(const Prepared& p, cplx* data, std::size_t dim,
                      std::size_t stride, const ApplyOptions& options) {
  const std::size_t bit = p.bit0;
  const std::size_t low = bit - 1;
  const cplx m00 = p.m[0], m01 = p.m[1], m10 = p.m[2], m11 = p.m[3];
  sliced(dim >> 1, dim, options, [&](std::size_t b, std::size_t e) {
    for (std::size_t g = b; g < e; ++g) {
      const std::size_t i0 = ((g & ~low) << 1) | (g & low);
      const std::size_t i1 = i0 | bit;
      const cplx a0 = data[at<Unit>(i0, stride)];
      const cplx a1 = data[at<Unit>(i1, stride)];
      data[at<Unit>(i0, stride)] = m00 * a0 + m01 * a1;
      data[at<Unit>(i1, stride)] = m10 * a0 + m11 * a1;
    }
  });
}

template <bool Unit>
void run_twoq_diag(const Prepared& p, cplx* data, std::size_t dim,
                   std::size_t stride, const ApplyOptions& options) {
  const int qa = p.q0, qb = p.q1;
  sliced(dim, dim, options, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const std::size_t sub = ((i >> qa) & 1U) | (((i >> qb) & 1U) << 1);
      data[at<Unit>(i, stride)] *= p.d[sub];
    }
  });
}

/// Reconstructs the g-th coset representative (zeros at both gate-qubit
/// positions) by splitting g at the sorted positions — no skip-branch, each
/// of the 2^(n-2) cosets visited exactly once in ascending address order so
/// the four amplitude streams advance sequentially through memory.
inline std::size_t coset_base(std::size_t g, int lo_pos, int hi_pos) {
  const std::size_t lo_mask = (std::size_t{1} << lo_pos) - 1;
  const std::size_t lo = g & lo_mask;
  const std::size_t mid =
      (g >> lo_pos) & ((std::size_t{1} << (hi_pos - 1 - lo_pos)) - 1);
  const std::size_t hi = g >> (hi_pos - 1);
  return (hi << (hi_pos + 1)) | (mid << (lo_pos + 1)) | lo;
}

template <bool Unit>
void run_twoq_perm(const Prepared& p, cplx* data, std::size_t dim,
                   std::size_t stride, const ApplyOptions& options) {
  const std::size_t offs[4] = {0, p.bit0, p.bit1, p.bit0 | p.bit1};
  if (p.pure_swap) {
    // CX / SWAP shape: amplitudes move, none are scaled — zero multiplies.
    const std::size_t oa = offs[p.swap_a], ob = offs[p.swap_b];
    sliced(dim >> 2, dim, options, [&](std::size_t b, std::size_t e) {
      for (std::size_t g = b; g < e; ++g) {
        const std::size_t base = coset_base(g, p.lo_pos, p.hi_pos);
        std::swap(data[at<Unit>(base | oa, stride)],
                  data[at<Unit>(base | ob, stride)]);
      }
    });
    return;
  }
  sliced(dim >> 2, dim, options, [&](std::size_t b, std::size_t e) {
    for (std::size_t g = b; g < e; ++g) {
      const std::size_t base = coset_base(g, p.lo_pos, p.hi_pos);
      cplx t[4];
      for (int m = 0; m < 4; ++m) t[m] = data[at<Unit>(base | offs[m], stride)];
      for (int r = 0; r < 4; ++r)
        data[at<Unit>(base | offs[r], stride)] = p.phase[r] * t[p.perm[r]];
    }
  });
}

template <bool Unit>
void run_twoq_general(const Prepared& p, cplx* data, std::size_t dim,
                      std::size_t stride, const ApplyOptions& options) {
  const std::size_t offs[4] = {0, p.bit0, p.bit1, p.bit0 | p.bit1};
  sliced(dim >> 2, dim, options, [&](std::size_t b, std::size_t e) {
    for (std::size_t g = b; g < e; ++g) {
      const std::size_t base = coset_base(g, p.lo_pos, p.hi_pos);
      const cplx t0 = data[at<Unit>(base | offs[0], stride)];
      const cplx t1 = data[at<Unit>(base | offs[1], stride)];
      const cplx t2 = data[at<Unit>(base | offs[2], stride)];
      const cplx t3 = data[at<Unit>(base | offs[3], stride)];
      for (int r = 0; r < 4; ++r) {
        const cplx* row = p.m + 4 * r;
        data[at<Unit>(base | offs[r], stride)] =
            row[0] * t0 + row[1] * t1 + row[2] * t2 + row[3] * t3;
      }
    }
  });
}

template <bool Unit>
void run_prepared(const Prepared& p, cplx* data, std::size_t dim,
                  std::size_t stride, const ApplyOptions& options) {
  switch (p.kind) {
    case KernelKind::OneQDiag:
      run_oneq_diag<Unit>(p, data, dim, stride, options);
      return;
    case KernelKind::OneQGeneral:
      run_oneq_general<Unit>(p, data, dim, stride, options);
      return;
    case KernelKind::TwoQDiag:
      run_twoq_diag<Unit>(p, data, dim, stride, options);
      return;
    case KernelKind::TwoQPermPhase:
      run_twoq_perm<Unit>(p, data, dim, stride, options);
      return;
    case KernelKind::TwoQGeneral:
      run_twoq_general<Unit>(p, data, dim, stride, options);
      return;
    case KernelKind::GenericK:
      QC_CHECK_MSG(false, "generic kernels have no prepared form");
  }
}

}  // namespace

void apply_operator(std::vector<cplx>& state, const Matrix& op,
                    const std::vector<int>& qubits,
                    const ApplyOptions& options) {
  if (classify_kernel(op) == KernelKind::GenericK) {
    apply_gate_inplace(state, op, qubits);
    return;
  }
  const Prepared p = prepare(op, qubits, state.size());
  run_prepared<true>(p, state.data(), state.size(), 1, options);
}

void apply_cx(std::vector<cplx>& state, int control, int target,
              const ApplyOptions& options) {
  const std::size_t dim = state.size();
  QC_CHECK_MSG(std::has_single_bit(dim), "state size must be a power of two");
  QC_CHECK(control >= 0 && target >= 0 && control != target);
  QC_CHECK((std::size_t{1} << control) < dim && (std::size_t{1} << target) < dim);
  const std::size_t cbit = std::size_t{1} << control;
  const std::size_t tbit = std::size_t{1} << target;
  const int lo_pos = std::min(control, target);
  const int hi_pos = std::max(control, target);
  cplx* data = state.data();
  sliced(dim >> 2, dim, options, [&](std::size_t b, std::size_t e) {
    for (std::size_t g = b; g < e; ++g) {
      const std::size_t base = coset_base(g, lo_pos, hi_pos) | cbit;
      std::swap(data[base], data[base | tbit]);
    }
  });
}

void apply_cz(std::vector<cplx>& state, int a, int b,
              const ApplyOptions& options) {
  const std::size_t dim = state.size();
  QC_CHECK_MSG(std::has_single_bit(dim), "state size must be a power of two");
  QC_CHECK(a >= 0 && b >= 0 && a != b);
  QC_CHECK((std::size_t{1} << a) < dim && (std::size_t{1} << b) < dim);
  const std::size_t both = (std::size_t{1} << a) | (std::size_t{1} << b);
  const int lo_pos = std::min(a, b);
  const int hi_pos = std::max(a, b);
  cplx* data = state.data();
  sliced(dim >> 2, dim, options, [&](std::size_t begin, std::size_t end) {
    for (std::size_t g = begin; g < end; ++g) {
      const std::size_t i = coset_base(g, lo_pos, hi_pos) | both;
      data[i] = -data[i];
    }
  });
}

void apply_diag1(std::vector<cplx>& state, cplx d0, cplx d1, int qubit,
                 const ApplyOptions& options) {
  const std::size_t dim = state.size();
  QC_CHECK_MSG(std::has_single_bit(dim), "state size must be a power of two");
  QC_CHECK(qubit >= 0 && (std::size_t{1} << qubit) < dim);
  cplx* data = state.data();
  sliced(dim, dim, options, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i)
      data[i] *= ((i >> qubit) & 1U) ? d1 : d0;
  });
}

void left_apply(Matrix& u, const Matrix& op, const std::vector<int>& qubits,
                const ApplyOptions& options) {
  QC_CHECK(u.rows() == u.cols());
  if (classify_kernel(op) == KernelKind::GenericK) {
    left_apply_inplace(u, op, qubits);
    return;
  }
  const std::size_t dim = u.rows();
  const Prepared p = prepare(op, qubits, dim);
  cplx* data = u.data();
  // Thread across columns (each column is one strided kernel run); the inner
  // kernel stays serial so work is never double-sliced.
  sliced(dim, dim * dim, options, [&](std::size_t b, std::size_t e) {
    for (std::size_t col = b; col < e; ++col)
      run_prepared<false>(p, data + col, dim, dim, kSerial);
  });
}

void right_apply(Matrix& u, const Matrix& op, const std::vector<int>& qubits,
                 const ApplyOptions& options) {
  QC_CHECK(u.rows() == u.cols());
  if (classify_kernel(op) == KernelKind::GenericK) {
    right_apply_inplace(u, op, qubits);
    return;
  }
  const std::size_t dim = u.rows();
  // (u * embed(op)) transforms each row's sub-vector by op^T; rows are
  // contiguous in the row-major layout, so this is the unit-stride kernel.
  const Matrix op_t = op.transpose();
  const Prepared p = prepare(op_t, qubits, dim);
  cplx* data = u.data();
  sliced(dim, dim * dim, options, [&](std::size_t b, std::size_t e) {
    for (std::size_t row = b; row < e; ++row)
      run_prepared<true>(p, data + row * dim, dim, 1, kSerial);
  });
}

}  // namespace qc::linalg
