#include "linalg/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "linalg/embed.hpp"
#include "obs/log.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define QAPPROX_X86_KERNELS 1
#include <immintrin.h>
// Function-level target attributes let one TU carry scalar, AVX2+FMA and
// AVX-512 code without per-file -m flags, so the portable (non-native) build
// still ships every variant and picks at runtime.
#define QAPPROX_TGT_AVX2 __attribute__((target("avx2,fma")))
#define QAPPROX_TGT_AVX512 __attribute__((target("avx512f,avx2,fma")))
#endif
#if defined(__aarch64__)
#define QAPPROX_NEON_KERNELS 1
#include <arm_neon.h>
#endif

namespace qc::linalg {

void KernelCounts::add(KernelKind kind) {
  switch (kind) {
    case KernelKind::OneQDiag: ++oneq_diag; return;
    case KernelKind::OneQGeneral: ++oneq_general; return;
    case KernelKind::TwoQDiag: ++twoq_diag; return;
    case KernelKind::TwoQPermPhase: ++twoq_perm_phase; return;
    case KernelKind::TwoQGeneral: ++twoq_general; return;
    case KernelKind::ThreeQDiag: ++threeq_diag; return;
    case KernelKind::ThreeQGeneral: ++threeq_general; return;
    case KernelKind::FourQDiag: ++fourq_diag; return;
    case KernelKind::FourQGeneral: ++fourq_general; return;
    case KernelKind::GenericK: ++generic; return;
  }
}

const char* kernel_kind_name(KernelKind kind) {
  switch (kind) {
    case KernelKind::OneQDiag: return "1q_diag";
    case KernelKind::OneQGeneral: return "1q_general";
    case KernelKind::TwoQDiag: return "2q_diag";
    case KernelKind::TwoQPermPhase: return "2q_perm_phase";
    case KernelKind::TwoQGeneral: return "2q_general";
    case KernelKind::ThreeQDiag: return "3q_diag";
    case KernelKind::ThreeQGeneral: return "3q_general";
    case KernelKind::FourQDiag: return "4q_diag";
    case KernelKind::FourQGeneral: return "4q_general";
    case KernelKind::GenericK: return "generic";
  }
  return "unknown";
}

namespace {

bool is_diagonal(const Matrix& op, std::size_t d) {
  for (std::size_t r = 0; r < d; ++r)
    for (std::size_t c = 0; c < d; ++c)
      if (r != c && op(r, c) != cplx{0.0, 0.0}) return false;
  return true;
}

}  // namespace

KernelKind classify_kernel(const Matrix& op) {
  const std::size_t d = op.rows();
  if (d != op.cols()) return KernelKind::GenericK;
  if (d == 2) {
    return (op(0, 1) == cplx{0.0, 0.0} && op(1, 0) == cplx{0.0, 0.0})
               ? KernelKind::OneQDiag
               : KernelKind::OneQGeneral;
  }
  if (d == 8) {
    return is_diagonal(op, 8) ? KernelKind::ThreeQDiag
                              : KernelKind::ThreeQGeneral;
  }
  if (d == 16) {
    return is_diagonal(op, 16) ? KernelKind::FourQDiag
                               : KernelKind::FourQGeneral;
  }
  if (d != 4) return KernelKind::GenericK;
  if (is_diagonal(op, 4)) return KernelKind::TwoQDiag;
  // Permutation-phase: exactly one nonzero per row and per column.
  int col_of_row[4];
  int col_uses[4] = {0, 0, 0, 0};
  for (std::size_t r = 0; r < 4; ++r) {
    int nonzeros = 0;
    for (std::size_t c = 0; c < 4; ++c) {
      if (op(r, c) != cplx{0.0, 0.0}) {
        ++nonzeros;
        col_of_row[r] = static_cast<int>(c);
      }
    }
    if (nonzeros != 1) return KernelKind::TwoQGeneral;
    ++col_uses[col_of_row[r]];
  }
  for (int c = 0; c < 4; ++c)
    if (col_uses[c] != 1) return KernelKind::TwoQGeneral;
  return KernelKind::TwoQPermPhase;
}

bool kernels_compiled_with_fma() {
#ifdef __FMA__
  return true;
#else
  return false;
#endif
}

// ---- runtime SIMD dispatch -------------------------------------------------

const char* simd_isa_name(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::Scalar: return "scalar";
    case SimdIsa::Avx2: return "avx2";
    case SimdIsa::Avx512: return "avx512";
    case SimdIsa::Neon: return "neon";
  }
  return "unknown";
}

bool simd_isa_supported(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::Scalar:
      return true;
    case SimdIsa::Avx2:
#if defined(QAPPROX_X86_KERNELS)
      __builtin_cpu_init();
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case SimdIsa::Avx512:
#if defined(QAPPROX_X86_KERNELS)
      __builtin_cpu_init();
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case SimdIsa::Neon:
#if defined(QAPPROX_NEON_KERNELS)
      return true;  // NEON is baseline on aarch64.
#else
      return false;
#endif
  }
  return false;
}

SimdIsa best_supported_simd_isa() {
  if (simd_isa_supported(SimdIsa::Avx512)) return SimdIsa::Avx512;
  if (simd_isa_supported(SimdIsa::Avx2)) return SimdIsa::Avx2;
  if (simd_isa_supported(SimdIsa::Neon)) return SimdIsa::Neon;
  return SimdIsa::Scalar;
}

SimdIsa parse_simd_isa(const std::string& name, bool* ok) {
  if (ok) *ok = true;
  if (name == "scalar") return SimdIsa::Scalar;
  if (name == "avx2") return SimdIsa::Avx2;
  if (name == "avx512") return SimdIsa::Avx512;
  if (name == "neon") return SimdIsa::Neon;
  if (ok) *ok = false;
  return SimdIsa::Scalar;
}

SimdIsa resolve_simd_isa(const char* env_value) {
  if (env_value == nullptr || *env_value == '\0')
    return best_supported_simd_isa();
  bool ok = false;
  const SimdIsa requested = parse_simd_isa(env_value, &ok);
  if (!ok) {
    QC_LOG_WARN("linalg",
                "QAPPROX_SIMD='%s' not recognized "
                "(want scalar|avx2|avx512|neon); auto-detecting",
                env_value);
    return best_supported_simd_isa();
  }
  if (!simd_isa_supported(requested)) {
    const SimdIsa fallback = best_supported_simd_isa();
    QC_LOG_WARN("linalg", "QAPPROX_SIMD=%s unsupported on this host; using %s",
                simd_isa_name(requested), simd_isa_name(fallback));
    return fallback;
  }
  return requested;
}

namespace {

// -1 = not yet resolved; otherwise a SimdIsa value. Relaxed is enough:
// resolve_simd_isa is deterministic, so a racing first use installs the same
// value.
std::atomic<int> g_active_isa{-1};

}  // namespace

SimdIsa active_simd_isa() {
  int v = g_active_isa.load(std::memory_order_relaxed);
  if (v < 0) {
    const SimdIsa resolved = resolve_simd_isa(std::getenv("QAPPROX_SIMD"));
    int expected = -1;
    g_active_isa.compare_exchange_strong(expected,
                                         static_cast<int>(resolved),
                                         std::memory_order_relaxed);
    v = g_active_isa.load(std::memory_order_relaxed);
  }
  return static_cast<SimdIsa>(v);
}

SimdIsa force_simd_isa(SimdIsa isa) {
  if (!simd_isa_supported(isa)) isa = best_supported_simd_isa();
  g_active_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
  return isa;
}

bool kernels_bit_exact() {
  return !kernels_compiled_with_fma() && active_simd_isa() == SimdIsa::Scalar;
}

namespace {

void check_span(std::size_t dim, const std::vector<int>& qubits,
                std::size_t op_dim) {
  QC_CHECK_MSG(std::has_single_bit(dim), "span size must be a power of two");
  QC_CHECK(!qubits.empty());
  QC_CHECK_MSG(op_dim == (std::size_t{1} << qubits.size()),
               "operator dimension must be 2^#qubits");
  for (std::size_t i = 0; i < qubits.size(); ++i) {
    QC_CHECK(qubits[i] >= 0);
    QC_CHECK_MSG((std::size_t{1} << qubits[i]) < dim, "qubit index out of range");
    for (std::size_t j = i + 1; j < qubits.size(); ++j)
      QC_CHECK_MSG(qubits[i] != qubits[j], "duplicate qubit index");
  }
}

/// Everything a kernel invocation needs, extracted from the operator once so
/// matrix-apply loops (one kernel run per row) pay classification and
/// unpacking a single time.
struct Prepared {
  KernelKind kind = KernelKind::GenericK;
  int k = 1;                     // number of gate qubits (1..4)
  int q[4] = {0, 0, 0, 0};       // qubit positions in operator order
  std::size_t bit[4] = {};       // 1 << q[i]
  int spos[4] = {0, 0, 0, 0};    // the same positions, sorted ascending
  std::size_t offs[16] = {};     // sub-index -> address offset within a coset
  int lo_pos = 0, hi_pos = 0;    // sorted positions for 2q coset enumeration
  cplx m[256] = {};              // dense entries, row-major (up to 16x16)
  cplx d[16] = {};               // diagonal entries
  int perm[4] = {0, 1, 2, 3};    // source sub-index per output row (2q perm)
  cplx phase[4] = {};
  bool pure_swap = false;        // one transposition, all phases exactly 1
  int swap_a = 0, swap_b = 0;    // the transposed sub-indices
};

Prepared prepare(const Matrix& op, const std::vector<int>& qubits,
                 std::size_t dim) {
  check_span(dim, qubits, op.rows());
  QC_CHECK(op.rows() == op.cols());
  QC_CHECK_MSG(qubits.size() <= 4, "prepared kernels cover k <= 4");
  Prepared p;
  p.kind = classify_kernel(op);
  p.k = static_cast<int>(qubits.size());
  for (int i = 0; i < p.k; ++i) {
    p.q[i] = qubits[i];
    p.bit[i] = std::size_t{1} << qubits[i];
    p.spos[i] = qubits[i];
  }
  std::sort(p.spos, p.spos + p.k);
  const std::size_t sub = op.rows();
  for (std::size_t s = 0; s < sub; ++s) {
    std::size_t off = 0;
    for (int i = 0; i < p.k; ++i)
      if ((s >> i) & 1U) off |= p.bit[i];
    p.offs[s] = off;
  }
  for (std::size_t r = 0; r < sub; ++r)
    for (std::size_t c = 0; c < sub; ++c) p.m[r * sub + c] = op(r, c);
  for (std::size_t r = 0; r < sub; ++r) p.d[r] = op(r, r);
  if (p.k == 2) {
    p.lo_pos = p.spos[0];
    p.hi_pos = p.spos[1];
    if (p.kind == KernelKind::TwoQPermPhase) {
      int moved = 0;
      bool unit_phases = true;
      for (int r = 0; r < 4; ++r) {
        for (int c = 0; c < 4; ++c) {
          if (op(r, c) != cplx{0.0, 0.0}) {
            p.perm[r] = c;
            p.phase[r] = op(r, c);
          }
        }
        if (p.perm[r] != r) ++moved;
        if (p.phase[r] != cplx{1.0, 0.0}) unit_phases = false;
      }
      if (moved == 2 && unit_phases) {
        p.pure_swap = true;
        for (int r = 0; r < 4; ++r)
          if (p.perm[r] != r) {
            p.swap_a = r;
            p.swap_b = p.perm[r];
            break;
          }
      }
    }
  }
  return p;
}

/// Runs body(begin, end) over [0, count), sliced across the thread pool when
/// the span is at least `options.parallel_threshold` amplitudes. Slice
/// boundaries are aligned to multiples of 8 loop indices so the vector
/// kernels see the same absolute vector-block positions threaded as serial —
/// with disjoint slices that makes threaded results bit-identical to serial
/// ones at any fixed ISA.
template <typename Body>
void sliced(std::size_t count, std::size_t span_amps,
            const ApplyOptions& options, const Body& body) {
  if (span_amps < options.parallel_threshold || count < 2) {
    body(std::size_t{0}, count);
    return;
  }
  const std::size_t workers = common::ThreadPool::global().size();
  const std::size_t slices = std::min(count, std::max<std::size_t>(1, workers * 4));
  const std::size_t chunk =
      ((count + slices - 1) / slices + 7) & ~std::size_t{7};
  common::parallel_for(0, slices, [&](std::size_t s) {
    const std::size_t begin = s * chunk;
    if (begin >= count) return;
    body(begin, std::min(count, begin + chunk));
  });
}

/// Reconstructs the g-th coset representative (zeros at both gate-qubit
/// positions) by splitting g at the sorted positions — no skip-branch, each
/// of the 2^(n-2) cosets visited exactly once in ascending address order so
/// the four amplitude streams advance sequentially through memory.
inline std::size_t coset_base(std::size_t g, int lo_pos, int hi_pos) {
  const std::size_t lo_mask = (std::size_t{1} << lo_pos) - 1;
  const std::size_t lo = g & lo_mask;
  const std::size_t mid =
      (g >> lo_pos) & ((std::size_t{1} << (hi_pos - 1 - lo_pos)) - 1);
  const std::size_t hi = g >> (hi_pos - 1);
  return (hi << (hi_pos + 1)) | (mid << (lo_pos + 1)) | lo;
}

/// k-qubit generalization: inserts a zero bit at each sorted position in
/// ascending order. g enumerates the 2^(n-k) cosets in ascending base order.
inline std::size_t coset_base_k(std::size_t g, const int* spos, int k) {
  for (int i = 0; i < k; ++i) {
    const std::size_t mask = (std::size_t{1} << spos[i]) - 1;
    g = ((g & ~mask) << 1) | (g & mask);
  }
  return g;
}

// ---- scalar reference kernels ---------------------------------------------
//
// Each kernel is a plain range function over the kind's natural loop index
// (amplitudes for the 1q/2q diagonal kinds, coset groups otherwise) so ISA
// variants slot into a uniform dispatch table. The scalar bodies accumulate
// in ascending column order, matching apply_gate_inplace term for term.

using RangeFn = void (*)(const Prepared&, cplx*, std::size_t, std::size_t);

void s_oneq_diag(const Prepared& p, cplx* data, std::size_t b, std::size_t e) {
  const int q = p.q[0];
  const cplx d0 = p.d[0], d1 = p.d[1];
  for (std::size_t i = b; i < e; ++i)
    data[i] *= ((i >> q) & 1U) ? d1 : d0;
}

void s_oneq_general(const Prepared& p, cplx* data, std::size_t b,
                    std::size_t e) {
  const std::size_t bit = p.bit[0];
  const std::size_t low = bit - 1;
  const cplx m00 = p.m[0], m01 = p.m[1], m10 = p.m[2], m11 = p.m[3];
  for (std::size_t g = b; g < e; ++g) {
    const std::size_t i0 = ((g & ~low) << 1) | (g & low);
    const std::size_t i1 = i0 | bit;
    const cplx a0 = data[i0];
    const cplx a1 = data[i1];
    data[i0] = m00 * a0 + m01 * a1;
    data[i1] = m10 * a0 + m11 * a1;
  }
}

void s_twoq_diag(const Prepared& p, cplx* data, std::size_t b, std::size_t e) {
  const int qa = p.q[0], qb = p.q[1];
  for (std::size_t i = b; i < e; ++i) {
    const std::size_t sub = ((i >> qa) & 1U) | (((i >> qb) & 1U) << 1);
    data[i] *= p.d[sub];
  }
}

void s_twoq_perm(const Prepared& p, cplx* data, std::size_t b, std::size_t e) {
  if (p.pure_swap) {
    // CX / SWAP shape: amplitudes move, none are scaled — zero multiplies.
    const std::size_t oa = p.offs[p.swap_a], ob = p.offs[p.swap_b];
    for (std::size_t g = b; g < e; ++g) {
      const std::size_t base = coset_base(g, p.lo_pos, p.hi_pos);
      std::swap(data[base | oa], data[base | ob]);
    }
    return;
  }
  for (std::size_t g = b; g < e; ++g) {
    const std::size_t base = coset_base(g, p.lo_pos, p.hi_pos);
    cplx t[4];
    for (int m = 0; m < 4; ++m) t[m] = data[base | p.offs[m]];
    for (int r = 0; r < 4; ++r)
      data[base | p.offs[r]] = p.phase[r] * t[p.perm[r]];
  }
}

void s_twoq_general(const Prepared& p, cplx* data, std::size_t b,
                    std::size_t e) {
  for (std::size_t g = b; g < e; ++g) {
    const std::size_t base = coset_base(g, p.lo_pos, p.hi_pos);
    const cplx t0 = data[base | p.offs[0]];
    const cplx t1 = data[base | p.offs[1]];
    const cplx t2 = data[base | p.offs[2]];
    const cplx t3 = data[base | p.offs[3]];
    for (int r = 0; r < 4; ++r) {
      const cplx* row = p.m + 4 * r;
      data[base | p.offs[r]] =
          row[0] * t0 + row[1] * t1 + row[2] * t2 + row[3] * t3;
    }
  }
}

void s_kq_diag(const Prepared& p, cplx* data, std::size_t b, std::size_t e) {
  const std::size_t sub = std::size_t{1} << p.k;
  for (std::size_t g = b; g < e; ++g) {
    const std::size_t base = coset_base_k(g, p.spos, p.k);
    for (std::size_t s = 0; s < sub; ++s) data[base | p.offs[s]] *= p.d[s];
  }
}

void s_kq_general(const Prepared& p, cplx* data, std::size_t b,
                  std::size_t e) {
  const std::size_t sub = std::size_t{1} << p.k;
  cplx t[16];
  for (std::size_t g = b; g < e; ++g) {
    const std::size_t base = coset_base_k(g, p.spos, p.k);
    for (std::size_t s = 0; s < sub; ++s) t[s] = data[base | p.offs[s]];
    for (std::size_t r = 0; r < sub; ++r) {
      const cplx* row = p.m + r * sub;
      cplx acc = row[0] * t[0];
      for (std::size_t c = 1; c < sub; ++c) acc += row[c] * t[c];
      data[base | p.offs[r]] = acc;
    }
  }
}

// ---- row primitives (matrix-apply building blocks) -------------------------

void s_row_scale(cplx* row, std::size_t n, cplx s) {
  for (std::size_t j = 0; j < n; ++j) row[j] *= s;
}

void s_row_scale_copy(cplx* dst, const cplx* src, std::size_t n, cplx s) {
  for (std::size_t j = 0; j < n; ++j) dst[j] = s * src[j];
}

/// dst[j] = sum_c mrow[c] * scratch[c * stride + j] — one output row of a
/// cache-blocked coset-group transform. Ascending-c accumulation keeps the
/// scalar variant term-compatible with left_apply_inplace.
void s_row_combine(cplx* dst, const cplx* scratch, std::size_t stride,
                   std::size_t sub, const cplx* mrow, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    cplx acc = mrow[0] * scratch[j];
    for (std::size_t c = 1; c < sub; ++c)
      acc += mrow[c] * scratch[c * stride + j];
    dst[j] = acc;
  }
}

/// dst[j] += w * src[j] with a real weight: a pure elementwise double AXPY,
/// identical on every ISA (the compiler vectorizes the double loop).
void row_axpy_real(cplx* dst, const cplx* src, std::size_t n, double w) {
  double* d = reinterpret_cast<double*>(dst);
  const double* s = reinterpret_cast<const double*>(src);
  for (std::size_t i = 0; i < 2 * n; ++i) d[i] += w * s[i];
}

#if defined(QAPPROX_X86_KERNELS)

// ---- AVX2+FMA kernels ------------------------------------------------------
//
// One __m256d holds two complex doubles [re0, im0, re1, im1]. Complex
// multiply uses the fmaddsub idiom: even lanes get re*re - im*im, odd lanes
// im*re + re*im. Vector blocks always start at absolute loop indices that
// are multiples of the vector width (runs start on width-aligned boundaries
// and sliced() aligns chunk starts to 8), so threaded and serial runs round
// identically.

QAPPROX_TGT_AVX2 inline __m256d cmul2(__m256d a, __m256d b) {
  const __m256d br = _mm256_movedup_pd(b);
  const __m256d bi = _mm256_permute_pd(b, 0xF);
  return _mm256_fmaddsub_pd(a, br,
                            _mm256_mul_pd(_mm256_permute_pd(a, 0x5), bi));
}

/// a * s with the scalar s pre-broadcast into (sr, si).
QAPPROX_TGT_AVX2 inline __m256d cmul2s(__m256d a, __m256d sr, __m256d si) {
  return _mm256_fmaddsub_pd(a, sr,
                            _mm256_mul_pd(_mm256_permute_pd(a, 0x5), si));
}

QAPPROX_TGT_AVX2 inline __m256d bre2(const cplx* m, std::size_t i) {
  return _mm256_set1_pd(reinterpret_cast<const double*>(m + i)[0]);
}

QAPPROX_TGT_AVX2 inline __m256d bim2(const cplx* m, std::size_t i) {
  return _mm256_set1_pd(reinterpret_cast<const double*>(m + i)[1]);
}

QAPPROX_TGT_AVX2 void a2_oneq_diag(const Prepared& p, cplx* data,
                                   std::size_t b, std::size_t e) {
  const int q = p.q[0];
  const std::size_t bit = p.bit[0];
  if (q == 0) {
    // Factors alternate d0, d1 with adjacent amplitudes: elementwise multiply
    // by the packed [d0, d1] vector.
    const __m256d dv = _mm256_setr_pd(p.d[0].real(), p.d[0].imag(),
                                      p.d[1].real(), p.d[1].imag());
    std::size_t i = b;
    for (; i + 2 <= e; i += 2) {
      double* v = reinterpret_cast<double*>(data + i);
      _mm256_storeu_pd(v, cmul2(_mm256_loadu_pd(v), dv));
    }
    for (; i < e; ++i) data[i] *= ((i & 1U) ? p.d[1] : p.d[0]);
    return;
  }
  std::size_t i = b;
  while (i < e) {
    const cplx dd = ((i >> q) & 1U) ? p.d[1] : p.d[0];
    const std::size_t run = std::min(e - i, bit - (i & (bit - 1)));
    const __m256d dr = _mm256_set1_pd(dd.real());
    const __m256d di = _mm256_set1_pd(dd.imag());
    std::size_t j = 0;
    for (; j + 2 <= run; j += 2) {
      double* v = reinterpret_cast<double*>(data + i + j);
      _mm256_storeu_pd(v, cmul2s(_mm256_loadu_pd(v), dr, di));
    }
    for (; j < run; ++j) data[i + j] *= dd;
    i += run;
  }
}

QAPPROX_TGT_AVX2 void a2_oneq_general(const Prepared& p, cplx* data,
                                      std::size_t b, std::size_t e) {
  const std::size_t bit = p.bit[0];
  const std::size_t low = bit - 1;
  if (p.q[0] == 0) {
    // Pairs are adjacent in memory: one vector holds (a0, a1); duplicate
    // each amplitude across both lanes and multiply by the matrix columns.
    const __m256d col0 = _mm256_setr_pd(p.m[0].real(), p.m[0].imag(),
                                        p.m[2].real(), p.m[2].imag());
    const __m256d col1 = _mm256_setr_pd(p.m[1].real(), p.m[1].imag(),
                                        p.m[3].real(), p.m[3].imag());
    for (std::size_t g = b; g < e; ++g) {
      double* v = reinterpret_cast<double*>(data + 2 * g);
      const __m256d a = _mm256_loadu_pd(v);
      const __m256d a0 = _mm256_permute2f128_pd(a, a, 0x00);
      const __m256d a1 = _mm256_permute2f128_pd(a, a, 0x11);
      _mm256_storeu_pd(v, _mm256_add_pd(cmul2(a0, col0), cmul2(a1, col1)));
    }
    return;
  }
  const __m256d m00r = bre2(p.m, 0), m00i = bim2(p.m, 0);
  const __m256d m01r = bre2(p.m, 1), m01i = bim2(p.m, 1);
  const __m256d m10r = bre2(p.m, 2), m10i = bim2(p.m, 2);
  const __m256d m11r = bre2(p.m, 3), m11i = bim2(p.m, 3);
  std::size_t g = b;
  while (g < e) {
    const std::size_t i0 = ((g & ~low) << 1) | (g & low);
    const std::size_t run = std::min(e - g, bit - (g & low));
    double* p0 = reinterpret_cast<double*>(data + i0);
    double* p1 = reinterpret_cast<double*>(data + (i0 | bit));
    std::size_t j = 0;
    for (; j + 2 <= run; j += 2) {
      const __m256d a0 = _mm256_loadu_pd(p0 + 2 * j);
      const __m256d a1 = _mm256_loadu_pd(p1 + 2 * j);
      _mm256_storeu_pd(
          p0 + 2 * j,
          _mm256_add_pd(cmul2s(a0, m00r, m00i), cmul2s(a1, m01r, m01i)));
      _mm256_storeu_pd(
          p1 + 2 * j,
          _mm256_add_pd(cmul2s(a0, m10r, m10i), cmul2s(a1, m11r, m11i)));
    }
    for (; j < run; ++j) {
      const cplx a0 = data[i0 + j];
      const cplx a1 = data[(i0 | bit) + j];
      data[i0 + j] = p.m[0] * a0 + p.m[1] * a1;
      data[(i0 | bit) + j] = p.m[2] * a0 + p.m[3] * a1;
    }
    g += run;
  }
}

QAPPROX_TGT_AVX2 void a2_twoq_diag(const Prepared& p, cplx* data,
                                   std::size_t b, std::size_t e) {
  if (p.lo_pos == 0) {
    s_twoq_diag(p, data, b, e);
    return;
  }
  const int qa = p.q[0], qb = p.q[1];
  const std::size_t L = std::size_t{1} << p.lo_pos;
  std::size_t i = b;
  while (i < e) {
    const std::size_t sub = ((i >> qa) & 1U) | (((i >> qb) & 1U) << 1);
    const cplx dd = p.d[sub];
    const std::size_t run = std::min(e - i, L - (i & (L - 1)));
    const __m256d dr = _mm256_set1_pd(dd.real());
    const __m256d di = _mm256_set1_pd(dd.imag());
    std::size_t j = 0;
    for (; j + 2 <= run; j += 2) {
      double* v = reinterpret_cast<double*>(data + i + j);
      _mm256_storeu_pd(v, cmul2s(_mm256_loadu_pd(v), dr, di));
    }
    for (; j < run; ++j) data[i + j] *= dd;
    i += run;
  }
}

QAPPROX_TGT_AVX2 void a2_twoq_general(const Prepared& p, cplx* data,
                                      std::size_t b, std::size_t e) {
  if (p.lo_pos == 0) {
    s_twoq_general(p, data, b, e);
    return;
  }
  const std::size_t L = std::size_t{1} << p.lo_pos;
  std::size_t g = b;
  while (g < e) {
    const std::size_t base = coset_base(g, p.lo_pos, p.hi_pos);
    const std::size_t run = std::min(e - g, L - (g & (L - 1)));
    double* s[4];
    for (int c = 0; c < 4; ++c)
      s[c] = reinterpret_cast<double*>(data + (base | p.offs[c]));
    std::size_t j = 0;
    for (; j + 2 <= run; j += 2) {
      __m256d t[4];
      for (int c = 0; c < 4; ++c) t[c] = _mm256_loadu_pd(s[c] + 2 * j);
      for (int r = 0; r < 4; ++r) {
        __m256d acc = cmul2s(t[0], bre2(p.m, 4 * r), bim2(p.m, 4 * r));
        for (int c = 1; c < 4; ++c)
          acc = _mm256_add_pd(
              acc, cmul2s(t[c], bre2(p.m, 4 * r + c), bim2(p.m, 4 * r + c)));
        _mm256_storeu_pd(s[r] + 2 * j, acc);
      }
    }
    for (; j < run; ++j) {
      const std::size_t bj = base + j;
      const cplx t0 = data[bj | p.offs[0]];
      const cplx t1 = data[bj | p.offs[1]];
      const cplx t2 = data[bj | p.offs[2]];
      const cplx t3 = data[bj | p.offs[3]];
      for (int r = 0; r < 4; ++r) {
        const cplx* row = p.m + 4 * r;
        data[bj | p.offs[r]] =
            row[0] * t0 + row[1] * t1 + row[2] * t2 + row[3] * t3;
      }
    }
    g += run;
  }
}

QAPPROX_TGT_AVX2 void a2_kq_general(const Prepared& p, cplx* data,
                                    std::size_t b, std::size_t e) {
  // Per coset: gather the 2^k amplitudes, then one row-major mat-vec with
  // two-lane complex FMAs and a horizontal lane add per output row.
  const std::size_t sub = std::size_t{1} << p.k;
  alignas(32) cplx t[16];
  for (std::size_t g = b; g < e; ++g) {
    const std::size_t base = coset_base_k(g, p.spos, p.k);
    for (std::size_t s = 0; s < sub; ++s) t[s] = data[base | p.offs[s]];
    for (std::size_t r = 0; r < sub; ++r) {
      const double* row = reinterpret_cast<const double*>(p.m + r * sub);
      __m256d acc = cmul2(_mm256_load_pd(reinterpret_cast<double*>(t)),
                          _mm256_loadu_pd(row));
      for (std::size_t c = 2; c < sub; c += 2)
        acc = _mm256_add_pd(
            acc, cmul2(_mm256_load_pd(reinterpret_cast<double*>(t + c)),
                       _mm256_loadu_pd(row + 2 * c)));
      const __m128d sum = _mm_add_pd(_mm256_castpd256_pd128(acc),
                                     _mm256_extractf128_pd(acc, 1));
      double out[2];
      _mm_storeu_pd(out, sum);
      data[base | p.offs[r]] = cplx{out[0], out[1]};
    }
  }
}

QAPPROX_TGT_AVX2 void a2_row_scale(cplx* row, std::size_t n, cplx s) {
  const __m256d sr = _mm256_set1_pd(s.real());
  const __m256d si = _mm256_set1_pd(s.imag());
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    double* v = reinterpret_cast<double*>(row + j);
    _mm256_storeu_pd(v, cmul2s(_mm256_loadu_pd(v), sr, si));
  }
  for (; j < n; ++j) row[j] *= s;
}

QAPPROX_TGT_AVX2 void a2_row_scale_copy(cplx* dst, const cplx* src,
                                        std::size_t n, cplx s) {
  const __m256d sr = _mm256_set1_pd(s.real());
  const __m256d si = _mm256_set1_pd(s.imag());
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    _mm256_storeu_pd(
        reinterpret_cast<double*>(dst + j),
        cmul2s(_mm256_loadu_pd(reinterpret_cast<const double*>(src + j)), sr,
               si));
  }
  for (; j < n; ++j) dst[j] = s * src[j];
}

QAPPROX_TGT_AVX2 void a2_row_combine(cplx* dst, const cplx* scratch,
                                     std::size_t stride, std::size_t sub,
                                     const cplx* mrow, std::size_t n) {
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    __m256d acc = cmul2s(
        _mm256_loadu_pd(reinterpret_cast<const double*>(scratch + j)),
        bre2(mrow, 0), bim2(mrow, 0));
    for (std::size_t c = 1; c < sub; ++c)
      acc = _mm256_add_pd(
          acc, cmul2s(_mm256_loadu_pd(reinterpret_cast<const double*>(
                          scratch + c * stride + j)),
                      bre2(mrow, c), bim2(mrow, c)));
    _mm256_storeu_pd(reinterpret_cast<double*>(dst + j), acc);
  }
  for (; j < n; ++j) {
    cplx acc = mrow[0] * scratch[j];
    for (std::size_t c = 1; c < sub; ++c)
      acc += mrow[c] * scratch[c * stride + j];
    dst[j] = acc;
  }
}

// ---- AVX-512 kernels -------------------------------------------------------
//
// Four complex doubles per __m512d; narrow cases (low gate qubits) fall back
// to the AVX2 variants, which every AVX-512 host also supports.

QAPPROX_TGT_AVX512 inline __m512d cmul4(__m512d a, __m512d b) {
  const __m512d br = _mm512_movedup_pd(b);
  const __m512d bi = _mm512_permute_pd(b, 0xFF);
  return _mm512_fmaddsub_pd(a, br,
                            _mm512_mul_pd(_mm512_permute_pd(a, 0x55), bi));
}

QAPPROX_TGT_AVX512 inline __m512d cmul4s(__m512d a, __m512d sr, __m512d si) {
  return _mm512_fmaddsub_pd(a, sr,
                            _mm512_mul_pd(_mm512_permute_pd(a, 0x55), si));
}

QAPPROX_TGT_AVX512 void a5_oneq_general(const Prepared& p, cplx* data,
                                        std::size_t b, std::size_t e) {
  if (p.q[0] < 2) {
    a2_oneq_general(p, data, b, e);
    return;
  }
  const std::size_t bit = p.bit[0];
  const std::size_t low = bit - 1;
  const __m512d m00r = _mm512_set1_pd(p.m[0].real());
  const __m512d m00i = _mm512_set1_pd(p.m[0].imag());
  const __m512d m01r = _mm512_set1_pd(p.m[1].real());
  const __m512d m01i = _mm512_set1_pd(p.m[1].imag());
  const __m512d m10r = _mm512_set1_pd(p.m[2].real());
  const __m512d m10i = _mm512_set1_pd(p.m[2].imag());
  const __m512d m11r = _mm512_set1_pd(p.m[3].real());
  const __m512d m11i = _mm512_set1_pd(p.m[3].imag());
  std::size_t g = b;
  while (g < e) {
    const std::size_t i0 = ((g & ~low) << 1) | (g & low);
    const std::size_t run = std::min(e - g, bit - (g & low));
    double* p0 = reinterpret_cast<double*>(data + i0);
    double* p1 = reinterpret_cast<double*>(data + (i0 | bit));
    std::size_t j = 0;
    for (; j + 4 <= run; j += 4) {
      const __m512d a0 = _mm512_loadu_pd(p0 + 2 * j);
      const __m512d a1 = _mm512_loadu_pd(p1 + 2 * j);
      _mm512_storeu_pd(
          p0 + 2 * j,
          _mm512_add_pd(cmul4s(a0, m00r, m00i), cmul4s(a1, m01r, m01i)));
      _mm512_storeu_pd(
          p1 + 2 * j,
          _mm512_add_pd(cmul4s(a0, m10r, m10i), cmul4s(a1, m11r, m11i)));
    }
    for (; j < run; ++j) {
      const cplx a0 = data[i0 + j];
      const cplx a1 = data[(i0 | bit) + j];
      data[i0 + j] = p.m[0] * a0 + p.m[1] * a1;
      data[(i0 | bit) + j] = p.m[2] * a0 + p.m[3] * a1;
    }
    g += run;
  }
}

QAPPROX_TGT_AVX512 void a5_twoq_general(const Prepared& p, cplx* data,
                                        std::size_t b, std::size_t e) {
  if (p.lo_pos < 2) {
    a2_twoq_general(p, data, b, e);
    return;
  }
  const std::size_t L = std::size_t{1} << p.lo_pos;
  std::size_t g = b;
  while (g < e) {
    const std::size_t base = coset_base(g, p.lo_pos, p.hi_pos);
    const std::size_t run = std::min(e - g, L - (g & (L - 1)));
    double* s[4];
    for (int c = 0; c < 4; ++c)
      s[c] = reinterpret_cast<double*>(data + (base | p.offs[c]));
    std::size_t j = 0;
    for (; j + 4 <= run; j += 4) {
      __m512d t[4];
      for (int c = 0; c < 4; ++c) t[c] = _mm512_loadu_pd(s[c] + 2 * j);
      for (int r = 0; r < 4; ++r) {
        const double* row = reinterpret_cast<const double*>(p.m + 4 * r);
        __m512d acc =
            cmul4s(t[0], _mm512_set1_pd(row[0]), _mm512_set1_pd(row[1]));
        for (int c = 1; c < 4; ++c)
          acc = _mm512_add_pd(acc, cmul4s(t[c], _mm512_set1_pd(row[2 * c]),
                                          _mm512_set1_pd(row[2 * c + 1])));
        _mm512_storeu_pd(s[r] + 2 * j, acc);
      }
    }
    for (; j < run; ++j) {
      const std::size_t bj = base + j;
      const cplx t0 = data[bj | p.offs[0]];
      const cplx t1 = data[bj | p.offs[1]];
      const cplx t2 = data[bj | p.offs[2]];
      const cplx t3 = data[bj | p.offs[3]];
      for (int r = 0; r < 4; ++r) {
        const cplx* row = p.m + 4 * r;
        data[bj | p.offs[r]] =
            row[0] * t0 + row[1] * t1 + row[2] * t2 + row[3] * t3;
      }
    }
    g += run;
  }
}

QAPPROX_TGT_AVX512 void a5_kq_general(const Prepared& p, cplx* data,
                                      std::size_t b, std::size_t e) {
  const std::size_t sub = std::size_t{1} << p.k;
  alignas(64) cplx t[16];
  for (std::size_t g = b; g < e; ++g) {
    const std::size_t base = coset_base_k(g, p.spos, p.k);
    for (std::size_t s = 0; s < sub; ++s) t[s] = data[base | p.offs[s]];
    for (std::size_t r = 0; r < sub; ++r) {
      const double* row = reinterpret_cast<const double*>(p.m + r * sub);
      __m512d acc = cmul4(_mm512_load_pd(reinterpret_cast<double*>(t)),
                          _mm512_loadu_pd(row));
      for (std::size_t c = 4; c < sub; c += 4)
        acc = _mm512_add_pd(
            acc, cmul4(_mm512_load_pd(reinterpret_cast<double*>(t + c)),
                       _mm512_loadu_pd(row + 2 * c)));
      const __m256d half = _mm256_add_pd(_mm512_castpd512_pd256(acc),
                                         _mm512_extractf64x4_pd(acc, 1));
      const __m128d sum = _mm_add_pd(_mm256_castpd256_pd128(half),
                                     _mm256_extractf128_pd(half, 1));
      double out[2];
      _mm_storeu_pd(out, sum);
      data[base | p.offs[r]] = cplx{out[0], out[1]};
    }
  }
}

QAPPROX_TGT_AVX512 void a5_row_combine(cplx* dst, const cplx* scratch,
                                       std::size_t stride, std::size_t sub,
                                       const cplx* mrow, std::size_t n) {
  const double* mr = reinterpret_cast<const double*>(mrow);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    __m512d acc =
        cmul4s(_mm512_loadu_pd(reinterpret_cast<const double*>(scratch + j)),
               _mm512_set1_pd(mr[0]), _mm512_set1_pd(mr[1]));
    for (std::size_t c = 1; c < sub; ++c)
      acc = _mm512_add_pd(
          acc, cmul4s(_mm512_loadu_pd(reinterpret_cast<const double*>(
                          scratch + c * stride + j)),
                      _mm512_set1_pd(mr[2 * c]), _mm512_set1_pd(mr[2 * c + 1])));
    _mm512_storeu_pd(reinterpret_cast<double*>(dst + j), acc);
  }
  if (j < n) a2_row_combine(dst + j, scratch + j, stride, sub, mrow, n - j);
}

#endif  // QAPPROX_X86_KERNELS

#if defined(QAPPROX_NEON_KERNELS)

// ---- NEON kernels ----------------------------------------------------------
//
// One float64x2_t holds a single complex double, so NEON mainly saves the
// shuffle/mul bookkeeping of the scalar complex operator<*>; the dense 1q/2q
// kernels below cover the trajectory hot path.

inline float64x2_t ncmul(float64x2_t a, float64x2_t b) {
  const float64x2_t sgn = {-1.0, 1.0};
  const float64x2_t br = vdupq_laneq_f64(b, 0);
  const float64x2_t bi = vdupq_laneq_f64(b, 1);
  const float64x2_t t = vmulq_f64(vextq_f64(a, a, 1), bi);
  return vfmaq_f64(vmulq_f64(t, sgn), a, br);
}

void n_oneq_diag(const Prepared& p, cplx* data, std::size_t b, std::size_t e) {
  const int q = p.q[0];
  const float64x2_t d0 =
      vld1q_f64(reinterpret_cast<const double*>(&p.d[0]));
  const float64x2_t d1 =
      vld1q_f64(reinterpret_cast<const double*>(&p.d[1]));
  for (std::size_t i = b; i < e; ++i) {
    double* v = reinterpret_cast<double*>(data + i);
    vst1q_f64(v, ncmul(vld1q_f64(v), ((i >> q) & 1U) ? d1 : d0));
  }
}

void n_oneq_general(const Prepared& p, cplx* data, std::size_t b,
                    std::size_t e) {
  const std::size_t bit = p.bit[0];
  const std::size_t low = bit - 1;
  const double* m = reinterpret_cast<const double*>(p.m);
  const float64x2_t m00 = vld1q_f64(m + 0), m01 = vld1q_f64(m + 2);
  const float64x2_t m10 = vld1q_f64(m + 4), m11 = vld1q_f64(m + 6);
  for (std::size_t g = b; g < e; ++g) {
    const std::size_t i0 = ((g & ~low) << 1) | (g & low);
    const std::size_t i1 = i0 | bit;
    double* v0 = reinterpret_cast<double*>(data + i0);
    double* v1 = reinterpret_cast<double*>(data + i1);
    const float64x2_t a0 = vld1q_f64(v0);
    const float64x2_t a1 = vld1q_f64(v1);
    vst1q_f64(v0, vaddq_f64(ncmul(a0, m00), ncmul(a1, m01)));
    vst1q_f64(v1, vaddq_f64(ncmul(a0, m10), ncmul(a1, m11)));
  }
}

void n_twoq_general(const Prepared& p, cplx* data, std::size_t b,
                    std::size_t e) {
  const double* m = reinterpret_cast<const double*>(p.m);
  for (std::size_t g = b; g < e; ++g) {
    const std::size_t base = coset_base(g, p.lo_pos, p.hi_pos);
    float64x2_t t[4];
    for (int c = 0; c < 4; ++c)
      t[c] = vld1q_f64(reinterpret_cast<double*>(data + (base | p.offs[c])));
    for (int r = 0; r < 4; ++r) {
      float64x2_t acc = ncmul(t[0], vld1q_f64(m + 8 * r));
      for (int c = 1; c < 4; ++c)
        acc = vaddq_f64(acc, ncmul(t[c], vld1q_f64(m + 8 * r + 2 * c)));
      vst1q_f64(reinterpret_cast<double*>(data + (base | p.offs[r])), acc);
    }
  }
}

#endif  // QAPPROX_NEON_KERNELS

// ---- dispatch tables -------------------------------------------------------

constexpr int kNumKinds = 10;

struct KernelTable {
  RangeFn fn[kNumKinds];
};

struct RowOps {
  void (*scale)(cplx*, std::size_t, cplx);
  void (*scale_copy)(cplx*, const cplx*, std::size_t, cplx);
  void (*combine)(cplx*, const cplx*, std::size_t, std::size_t, const cplx*,
                  std::size_t);
};

// Entry order mirrors KernelKind; GenericK never reaches a table.
constexpr KernelTable kScalarTable = {{s_oneq_diag, s_oneq_general,
                                       s_twoq_diag, s_twoq_perm,
                                       s_twoq_general, s_kq_diag,
                                       s_kq_general, s_kq_diag, s_kq_general,
                                       nullptr}};
constexpr RowOps kScalarRowOps = {s_row_scale, s_row_scale_copy,
                                  s_row_combine};

#if defined(QAPPROX_X86_KERNELS)
constexpr KernelTable kAvx2Table = {{a2_oneq_diag, a2_oneq_general,
                                     a2_twoq_diag, s_twoq_perm,
                                     a2_twoq_general, s_kq_diag,
                                     a2_kq_general, s_kq_diag, a2_kq_general,
                                     nullptr}};
constexpr KernelTable kAvx512Table = {{a2_oneq_diag, a5_oneq_general,
                                       a2_twoq_diag, s_twoq_perm,
                                       a5_twoq_general, s_kq_diag,
                                       a5_kq_general, s_kq_diag,
                                       a5_kq_general, nullptr}};
constexpr RowOps kAvx2RowOps = {a2_row_scale, a2_row_scale_copy,
                                a2_row_combine};
constexpr RowOps kAvx512RowOps = {a2_row_scale, a2_row_scale_copy,
                                  a5_row_combine};
#endif
#if defined(QAPPROX_NEON_KERNELS)
constexpr KernelTable kNeonTable = {{n_oneq_diag, n_oneq_general, s_twoq_diag,
                                     s_twoq_perm, n_twoq_general, s_kq_diag,
                                     s_kq_general, s_kq_diag, s_kq_general,
                                     nullptr}};
#endif

const KernelTable& kernel_table(SimdIsa isa) {
  switch (isa) {
#if defined(QAPPROX_X86_KERNELS)
    case SimdIsa::Avx2: return kAvx2Table;
    case SimdIsa::Avx512: return kAvx512Table;
#endif
#if defined(QAPPROX_NEON_KERNELS)
    case SimdIsa::Neon: return kNeonTable;
#endif
    default: return kScalarTable;
  }
}

const RowOps& row_ops(SimdIsa isa) {
  switch (isa) {
#if defined(QAPPROX_X86_KERNELS)
    case SimdIsa::Avx2: return kAvx2RowOps;
    case SimdIsa::Avx512: return kAvx512RowOps;
#endif
    default: return kScalarRowOps;
  }
}

/// Loop-index count for a kind on a span of `dim` amplitudes.
std::size_t loop_count(KernelKind kind, std::size_t dim) {
  switch (kind) {
    case KernelKind::OneQDiag:
    case KernelKind::TwoQDiag: return dim;
    case KernelKind::OneQGeneral: return dim >> 1;
    case KernelKind::TwoQPermPhase:
    case KernelKind::TwoQGeneral: return dim >> 2;
    case KernelKind::ThreeQDiag:
    case KernelKind::ThreeQGeneral: return dim >> 3;
    case KernelKind::FourQDiag:
    case KernelKind::FourQGeneral: return dim >> 4;
    case KernelKind::GenericK: break;
  }
  QC_CHECK_MSG(false, "generic kernels have no prepared form");
  return 0;
}

void run_span(const Prepared& p, cplx* data, std::size_t dim,
              const ApplyOptions& options) {
  const RangeFn fn = kernel_table(active_simd_isa()).fn[static_cast<int>(p.kind)];
  sliced(loop_count(p.kind, dim), dim, options,
         [fn, &p, data](std::size_t b, std::size_t e) { fn(p, data, b, e); });
}

}  // namespace

void apply_operator(std::vector<cplx>& state, const Matrix& op,
                    const std::vector<int>& qubits,
                    const ApplyOptions& options) {
  if (classify_kernel(op) == KernelKind::GenericK) {
    apply_gate_inplace(state, op, qubits);
    return;
  }
  const Prepared p = prepare(op, qubits, state.size());
  run_span(p, state.data(), state.size(), options);
}

void apply_cx(std::vector<cplx>& state, int control, int target,
              const ApplyOptions& options) {
  const std::size_t dim = state.size();
  QC_CHECK_MSG(std::has_single_bit(dim), "state size must be a power of two");
  QC_CHECK(control >= 0 && target >= 0 && control != target);
  QC_CHECK((std::size_t{1} << control) < dim && (std::size_t{1} << target) < dim);
  const std::size_t cbit = std::size_t{1} << control;
  const std::size_t tbit = std::size_t{1} << target;
  const int lo_pos = std::min(control, target);
  const int hi_pos = std::max(control, target);
  cplx* data = state.data();
  sliced(dim >> 2, dim, options, [&](std::size_t b, std::size_t e) {
    for (std::size_t g = b; g < e; ++g) {
      const std::size_t base = coset_base(g, lo_pos, hi_pos) | cbit;
      std::swap(data[base], data[base | tbit]);
    }
  });
}

void apply_cz(std::vector<cplx>& state, int a, int b,
              const ApplyOptions& options) {
  const std::size_t dim = state.size();
  QC_CHECK_MSG(std::has_single_bit(dim), "state size must be a power of two");
  QC_CHECK(a >= 0 && b >= 0 && a != b);
  QC_CHECK((std::size_t{1} << a) < dim && (std::size_t{1} << b) < dim);
  const std::size_t both = (std::size_t{1} << a) | (std::size_t{1} << b);
  const int lo_pos = std::min(a, b);
  const int hi_pos = std::max(a, b);
  cplx* data = state.data();
  sliced(dim >> 2, dim, options, [&](std::size_t begin, std::size_t end) {
    for (std::size_t g = begin; g < end; ++g) {
      const std::size_t i = coset_base(g, lo_pos, hi_pos) | both;
      data[i] = -data[i];
    }
  });
}

void apply_diag1(std::vector<cplx>& state, cplx d0, cplx d1, int qubit,
                 const ApplyOptions& options) {
  const std::size_t dim = state.size();
  QC_CHECK_MSG(std::has_single_bit(dim), "state size must be a power of two");
  QC_CHECK(qubit >= 0 && (std::size_t{1} << qubit) < dim);
  Prepared p;
  p.kind = KernelKind::OneQDiag;
  p.k = 1;
  p.q[0] = qubit;
  p.bit[0] = std::size_t{1} << qubit;
  p.spos[0] = qubit;
  p.d[0] = d0;
  p.d[1] = d1;
  run_span(p, state.data(), dim, options);
}

void left_apply(Matrix& u, const Matrix& op, const std::vector<int>& qubits,
                const ApplyOptions& options) {
  QC_CHECK(u.rows() == u.cols());
  const KernelKind kind = classify_kernel(op);
  if (kind == KernelKind::GenericK) {
    left_apply_inplace(u, op, qubits);
    return;
  }
  const std::size_t dim = u.rows();
  const Prepared p = prepare(op, qubits, dim);
  cplx* data = u.data();
  const std::size_t span = dim * dim;
  const RowOps& ops = row_ops(active_simd_isa());
  switch (kind) {
    case KernelKind::OneQDiag:
    case KernelKind::TwoQDiag:
    case KernelKind::ThreeQDiag:
    case KernelKind::FourQDiag: {
      // embed(op) is diagonal: row i of u scales by d[sub(i)], unit-stride.
      sliced(dim, span, options, [&](std::size_t b, std::size_t e) {
        for (std::size_t row = b; row < e; ++row) {
          std::size_t s = 0;
          for (int i = 0; i < p.k; ++i) s |= ((row >> p.q[i]) & 1U) << i;
          ops.scale(data + row * dim, dim, p.d[s]);
        }
      });
      return;
    }
    case KernelKind::TwoQPermPhase: {
      sliced(dim >> 2, span, options, [&](std::size_t b, std::size_t e) {
        std::vector<cplx> scratch(dim);
        for (std::size_t g = b; g < e; ++g) {
          const std::size_t base = coset_base(g, p.lo_pos, p.hi_pos);
          auto row_of = [&](int s) { return data + (base | p.offs[s]) * dim; };
          if (p.pure_swap) {
            cplx* ra = row_of(p.swap_a);
            cplx* rb = row_of(p.swap_b);
            std::swap_ranges(ra, ra + dim, rb);
            continue;
          }
          // Walk each permutation cycle with one scratch row; fixed points
          // just scale in place.
          bool done[4] = {false, false, false, false};
          for (int r = 0; r < 4; ++r) {
            if (done[r]) continue;
            if (p.perm[r] == r) {
              if (p.phase[r] != cplx{1.0, 0.0})
                ops.scale(row_of(r), dim, p.phase[r]);
              done[r] = true;
              continue;
            }
            std::copy_n(row_of(r), dim, scratch.data());
            int cur = r;
            while (p.perm[cur] != r) {
              ops.scale_copy(row_of(cur), row_of(p.perm[cur]), dim,
                             p.phase[cur]);
              done[cur] = true;
              cur = p.perm[cur];
            }
            ops.scale_copy(row_of(cur), scratch.data(), dim, p.phase[cur]);
            done[cur] = true;
          }
        }
      });
      return;
    }
    default: break;
  }
  // Dense case: coset groups outermost, then column tiles. The 2^k row
  // streams of one group advance unit-stride together, and the sub x kTile
  // scratch tile (<=16 KiB) keeps the whole group resident in L1 — this is
  // what un-memory-binds the density-matrix conjugation, which previously
  // walked full strided columns.
  const std::size_t sub = std::size_t{1} << p.k;
  const std::size_t groups = dim >> p.k;
  constexpr std::size_t kTile = 64;
  sliced(groups, span, options, [&](std::size_t b, std::size_t e) {
    alignas(64) cplx scratch[16 * kTile];
    cplx* dst[16];
    for (std::size_t g = b; g < e; ++g) {
      const std::size_t base = coset_base_k(g, p.spos, p.k);
      for (std::size_t s = 0; s < sub; ++s)
        dst[s] = data + (base | p.offs[s]) * dim;
      for (std::size_t c0 = 0; c0 < dim; c0 += kTile) {
        const std::size_t n = std::min(kTile, dim - c0);
        for (std::size_t s = 0; s < sub; ++s)
          std::memcpy(scratch + s * kTile, dst[s] + c0, n * sizeof(cplx));
        for (std::size_t r = 0; r < sub; ++r)
          ops.combine(dst[r] + c0, scratch, kTile, sub, p.m + r * sub, n);
      }
    }
  });
}

void right_apply(Matrix& u, const Matrix& op, const std::vector<int>& qubits,
                 const ApplyOptions& options) {
  QC_CHECK(u.rows() == u.cols());
  if (classify_kernel(op) == KernelKind::GenericK) {
    right_apply_inplace(u, op, qubits);
    return;
  }
  const std::size_t dim = u.rows();
  // (u * embed(op)) transforms each row's sub-vector by op^T; rows are
  // contiguous in the row-major layout, so this is the unit-stride kernel.
  const Matrix op_t = op.transpose();
  const Prepared p = prepare(op_t, qubits, dim);
  const RangeFn fn = kernel_table(active_simd_isa()).fn[static_cast<int>(p.kind)];
  const std::size_t cnt = loop_count(p.kind, dim);
  cplx* data = u.data();
  sliced(dim, dim * dim, options, [&](std::size_t b, std::size_t e) {
    for (std::size_t row = b; row < e; ++row)
      fn(p, data + row * dim, 0, cnt);
  });
}

void right_apply_accumulate(Matrix& accum, const Matrix& term, const Matrix& op,
                            const std::vector<int>& qubits, double weight,
                            const ApplyOptions& options) {
  QC_CHECK(accum.rows() == accum.cols());
  QC_CHECK_MSG(term.rows() == accum.rows() && term.cols() == accum.cols(),
               "accum and term must have identical shapes");
  const std::size_t dim = accum.rows();
  if (classify_kernel(op) == KernelKind::GenericK) {
    Matrix tmp = term;
    right_apply_inplace(tmp, op, qubits);
    row_axpy_real(accum.data(), tmp.data(), dim * dim, weight);
    return;
  }
  const Matrix op_t = op.transpose();
  const Prepared p = prepare(op_t, qubits, dim);
  const RangeFn fn = kernel_table(active_simd_isa()).fn[static_cast<int>(p.kind)];
  const std::size_t cnt = loop_count(p.kind, dim);
  const cplx* src = term.data();
  cplx* dst = accum.data();
  sliced(dim, dim * dim, options, [&](std::size_t b, std::size_t e) {
    std::vector<cplx> scratch(dim);
    for (std::size_t row = b; row < e; ++row) {
      std::copy_n(src + row * dim, dim, scratch.data());
      fn(p, scratch.data(), 0, cnt);
      row_axpy_real(dst + row * dim, scratch.data(), dim, weight);
    }
  });
}

}  // namespace qc::linalg
