// Embedding small operators into n-qubit spaces, and the shared
// apply-gate kernels used by the unitary builder and the simulators.
//
// Bit convention (Qiskit-compatible): qubit 0 is the least-significant bit
// of a basis index, so |q_{n-1} ... q_1 q_0>.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace qc::linalg {

/// Embeds a 2^k x 2^k operator acting on `qubits` (distinct, each in
/// [0, num_qubits)) into the full 2^n x 2^n space.
Matrix embed(const Matrix& op, const std::vector<int>& qubits, int num_qubits);

/// state := (op on qubits) * state, in place. `state.size()` must be a power
/// of two with at least max(qubits)+1 qubits. Core state-vector kernel.
void apply_gate_inplace(std::vector<cplx>& state, const Matrix& op,
                        const std::vector<int>& qubits);

/// u := embed(op) * u without forming the embedded matrix (applies the
/// state-vector kernel to each column of u). Used by the circuit->unitary
/// builder where it is asymptotically cheaper than GEMM with an embedding.
void left_apply_inplace(Matrix& u, const Matrix& op, const std::vector<int>& qubits);

/// u := u * embed(op). With left_apply_inplace this gives the density-matrix
/// Kraus update rho := K rho K† without forming embedded matrices.
void right_apply_inplace(Matrix& u, const Matrix& op, const std::vector<int>& qubits);

}  // namespace qc::linalg
