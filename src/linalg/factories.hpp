// Matrix factories: Pauli operators and Haar-random unitaries
// (random unitaries drive property tests and synthesis fuzzing).
#pragma once

#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace qc::linalg {

/// 2x2 Pauli matrices and friends.
Matrix pauli_i();
Matrix pauli_x();
Matrix pauli_y();
Matrix pauli_z();
Matrix hadamard2();

/// n-qubit Pauli string, e.g. "XZI" (leftmost char = highest qubit index,
/// matching ket ordering |q_{n-1}..q_0>).
Matrix pauli_string(const std::string& s);

/// Haar-random unitary of dimension `dim` via QR of a complex Ginibre matrix
/// with phase-corrected R diagonal.
Matrix random_unitary(std::size_t dim, common::Rng& rng);

/// Random Hermitian matrix with entries ~ N(0,1).
Matrix random_hermitian(std::size_t dim, common::Rng& rng);

}  // namespace qc::linalg
