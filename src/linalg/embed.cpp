#include "linalg/embed.hpp"

#include <bit>

#include "common/error.hpp"

namespace qc::linalg {

namespace {

void check_qubits(const std::vector<int>& qubits, std::size_t dim_needed,
                  std::size_t space_dim) {
  QC_CHECK(!qubits.empty());
  QC_CHECK_MSG(dim_needed == (std::size_t{1} << qubits.size()),
               "operator dimension must be 2^#qubits");
  for (std::size_t i = 0; i < qubits.size(); ++i) {
    QC_CHECK(qubits[i] >= 0);
    QC_CHECK_MSG((std::size_t{1} << qubits[i]) < space_dim, "qubit index out of range");
    for (std::size_t j = i + 1; j < qubits.size(); ++j)
      QC_CHECK_MSG(qubits[i] != qubits[j], "duplicate qubit index");
  }
}

/// Enumerates the 2^k sub-basis offsets for the given qubits within `base`,
/// where `base` has zeros at all `qubits` positions.
/// offsets[m] = base | bits of m scattered into qubit positions.
inline std::size_t scatter(std::size_t m, const std::vector<int>& qubits) {
  std::size_t out = 0;
  for (std::size_t b = 0; b < qubits.size(); ++b)
    if ((m >> b) & 1U) out |= (std::size_t{1} << qubits[b]);
  return out;
}

}  // namespace

Matrix embed(const Matrix& op, const std::vector<int>& qubits, int num_qubits) {
  QC_CHECK(num_qubits > 0 && num_qubits <= 24);
  const std::size_t dim = std::size_t{1} << num_qubits;
  check_qubits(qubits, op.rows(), dim);
  QC_CHECK(op.rows() == op.cols());

  const std::size_t k = qubits.size();
  const std::size_t sub = std::size_t{1} << k;
  std::size_t mask = 0;
  for (int q : qubits) mask |= (std::size_t{1} << q);

  Matrix out(dim, dim);
  for (std::size_t base = 0; base < dim; ++base) {
    if (base & mask) continue;  // visit each coset once via its zeroed representative
    for (std::size_t r = 0; r < sub; ++r) {
      const std::size_t row = base | scatter(r, qubits);
      for (std::size_t c = 0; c < sub; ++c) {
        out(row, base | scatter(c, qubits)) = op(r, c);
      }
    }
  }
  return out;
}

void apply_gate_inplace(std::vector<cplx>& state, const Matrix& op,
                        const std::vector<int>& qubits) {
  const std::size_t dim = state.size();
  QC_CHECK_MSG(std::has_single_bit(dim), "state dimension must be a power of two");
  check_qubits(qubits, op.rows(), dim);
  QC_CHECK(op.rows() == op.cols());

  const std::size_t k = qubits.size();
  const std::size_t sub = std::size_t{1} << k;
  std::size_t mask = 0;
  for (int q : qubits) mask |= (std::size_t{1} << q);

  // Precompute scatter table for the sub-space indices.
  std::vector<std::size_t> offs(sub);
  for (std::size_t m = 0; m < sub; ++m) offs[m] = scatter(m, qubits);

  std::vector<cplx> tmp(sub);
  for (std::size_t base = 0; base < dim; ++base) {
    if (base & mask) continue;
    for (std::size_t m = 0; m < sub; ++m) tmp[m] = state[base | offs[m]];
    for (std::size_t r = 0; r < sub; ++r) {
      cplx acc{0.0, 0.0};
      for (std::size_t c = 0; c < sub; ++c) acc += op(r, c) * tmp[c];
      state[base | offs[r]] = acc;
    }
  }
}

void left_apply_inplace(Matrix& u, const Matrix& op, const std::vector<int>& qubits) {
  const std::size_t dim = u.rows();
  QC_CHECK(u.rows() == u.cols());
  QC_CHECK_MSG(std::has_single_bit(dim), "matrix dimension must be a power of two");
  check_qubits(qubits, op.rows(), dim);

  const std::size_t k = qubits.size();
  const std::size_t sub = std::size_t{1} << k;
  std::size_t mask = 0;
  for (int q : qubits) mask |= (std::size_t{1} << q);
  std::vector<std::size_t> offs(sub);
  for (std::size_t m = 0; m < sub; ++m) offs[m] = scatter(m, qubits);

  std::vector<cplx> tmp(sub);
  for (std::size_t col = 0; col < dim; ++col) {
    for (std::size_t base = 0; base < dim; ++base) {
      if (base & mask) continue;
      for (std::size_t m = 0; m < sub; ++m) tmp[m] = u(base | offs[m], col);
      for (std::size_t r = 0; r < sub; ++r) {
        cplx acc{0.0, 0.0};
        for (std::size_t c = 0; c < sub; ++c) acc += op(r, c) * tmp[c];
        u(base | offs[r], col) = acc;
      }
    }
  }
}

void right_apply_inplace(Matrix& u, const Matrix& op, const std::vector<int>& qubits) {
  const std::size_t dim = u.cols();
  QC_CHECK(u.rows() == u.cols());
  QC_CHECK_MSG(std::has_single_bit(dim), "matrix dimension must be a power of two");
  check_qubits(qubits, op.rows(), dim);

  const std::size_t k = qubits.size();
  const std::size_t sub = std::size_t{1} << k;
  std::size_t mask = 0;
  for (int q : qubits) mask |= (std::size_t{1} << q);
  std::vector<std::size_t> offs(sub);
  for (std::size_t m = 0; m < sub; ++m) offs[m] = scatter(m, qubits);

  // (u * E)(r, c) = sum_k u(r, k) E(k, c): per row, the sub-vector transforms
  // by op^T.
  std::vector<cplx> tmp(sub);
  for (std::size_t row = 0; row < dim; ++row) {
    for (std::size_t base = 0; base < dim; ++base) {
      if (base & mask) continue;
      for (std::size_t m = 0; m < sub; ++m) tmp[m] = u(row, base | offs[m]);
      for (std::size_t c = 0; c < sub; ++c) {
        cplx acc{0.0, 0.0};
        for (std::size_t r = 0; r < sub; ++r) acc += op(r, c) * tmp[r];
        u(row, base | offs[c]) = acc;
      }
    }
  }
}

}  // namespace qc::linalg
