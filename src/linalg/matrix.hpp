// Dense complex linear algebra sized for circuit work.
//
// Dimensions here are 2^n for n up to ~12 qubits (unitaries for synthesis are
// at most 32x32; density matrices at most 2^5 x 2^5 in the experiments), so a
// straightforward cache-friendly row-major dense representation is the right
// tool; no sparse machinery is needed.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace qc::linalg {

using cplx = std::complex<double>;

/// Dense row-major complex matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols);
  Matrix(std::size_t rows, std::size_t cols, std::initializer_list<cplx> values);

  static Matrix identity(std::size_t n);
  static Matrix zeros(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  cplx& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const cplx& operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  cplx* data() { return data_.data(); }
  const cplx* data() const { return data_.data(); }

  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix operator*(const Matrix& rhs) const;  // GEMM
  Matrix operator*(cplx scalar) const;
  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(cplx scalar);

  /// Conjugate transpose.
  Matrix adjoint() const;
  /// Plain transpose.
  Matrix transpose() const;
  /// Elementwise complex conjugate.
  Matrix conjugate() const;

  cplx trace() const;
  double frobenius_norm() const;
  /// max_ij |a_ij - b_ij|
  double max_abs_diff(const Matrix& rhs) const;

  /// ||U†U - I||_max <= tol
  bool is_unitary(double tol = 1e-9) const;
  /// Hermitian within tolerance.
  bool is_hermitian(double tol = 1e-9) const;

  /// Matrix-vector product y = A x.
  std::vector<cplx> apply(const std::vector<cplx>& x) const;

  /// Order-dependent content hash over dimensions and entry bit patterns
  /// (common::hash_combine). Keys the synthesis result cache alongside exact
  /// structural discriminators, mirroring the execution-engine caches.
  std::uint64_t fingerprint() const;

  std::string to_string(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<cplx> data_;
};

Matrix operator*(cplx scalar, const Matrix& m);

/// Kronecker product a ⊗ b.
Matrix kron(const Matrix& a, const Matrix& b);

/// <x|y> with conjugation on x.
cplx inner(const std::vector<cplx>& x, const std::vector<cplx>& y);

/// Euclidean norm of a complex vector.
double norm(const std::vector<cplx>& x);

}  // namespace qc::linalg
