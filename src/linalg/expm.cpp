#include "linalg/expm.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qc::linalg {

Matrix solve(const Matrix& a, const Matrix& b) {
  QC_CHECK(a.rows() == a.cols());
  QC_CHECK(a.rows() == b.rows());
  const std::size_t n = a.rows();
  Matrix lu = a;
  Matrix x = b;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    double best = std::abs(lu(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(lu(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    QC_CHECK_MSG(best > 1e-300, "singular matrix in solve()");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu(col, c), lu(pivot, c));
      for (std::size_t c = 0; c < x.cols(); ++c) std::swap(x(col, c), x(pivot, c));
    }
    const cplx inv_p = cplx{1.0, 0.0} / lu(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const cplx f = lu(r, col) * inv_p;
      if (f == cplx{0.0, 0.0}) continue;
      for (std::size_t c = col; c < n; ++c) lu(r, c) -= f * lu(col, c);
      for (std::size_t c = 0; c < x.cols(); ++c) x(r, c) -= f * x(col, c);
    }
  }
  // Back substitution.
  for (std::size_t ri = n; ri-- > 0;) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      cplx acc = x(ri, c);
      for (std::size_t k = ri + 1; k < n; ++k) acc -= lu(ri, k) * x(k, c);
      x(ri, c) = acc / lu(ri, ri);
    }
  }
  return x;
}

namespace {

/// 1-norm (max column sum), the norm used by the Higham scaling heuristic.
double one_norm(const Matrix& a) {
  double best = 0.0;
  for (std::size_t c = 0; c < a.cols(); ++c) {
    double s = 0.0;
    for (std::size_t r = 0; r < a.rows(); ++r) s += std::abs(a(r, c));
    best = std::max(best, s);
  }
  return best;
}

}  // namespace

Matrix expm(const Matrix& a) {
  QC_CHECK(a.rows() == a.cols());
  const std::size_t n = a.rows();

  // Scaling: bring ||A/2^s|| under the Padé-13 threshold (~5.37).
  const double theta13 = 5.371920351148152;
  const double nrm = one_norm(a);
  int s = 0;
  if (nrm > theta13) {
    s = static_cast<int>(std::ceil(std::log2(nrm / theta13)));
    if (s < 0) s = 0;
  }
  Matrix as = a * cplx{std::ldexp(1.0, -s), 0.0};

  // Padé-13 coefficients.
  static const double b[] = {64764752532480000.0, 32382376266240000.0, 7771770303897600.0,
                             1187353796428800.0,  129060195264000.0,   10559470521600.0,
                             670442572800.0,      33522128640.0,       1323241920.0,
                             40840800.0,          960960.0,            16380.0,
                             182.0,               1.0};

  const Matrix ident = Matrix::identity(n);
  const Matrix a2 = as * as;
  const Matrix a4 = a2 * a2;
  const Matrix a6 = a4 * a2;

  // U = A (A6 (b13 A6 + b11 A4 + b9 A2) + b7 A6 + b5 A4 + b3 A2 + b1 I)
  Matrix tmp = a6 * cplx{b[13], 0} + a4 * cplx{b[11], 0} + a2 * cplx{b[9], 0};
  Matrix u = a6 * tmp + a6 * cplx{b[7], 0} + a4 * cplx{b[5], 0} + a2 * cplx{b[3], 0} +
             ident * cplx{b[1], 0};
  u = as * u;
  // V = A6 (b12 A6 + b10 A4 + b8 A2) + b6 A6 + b4 A4 + b2 A2 + b0 I
  tmp = a6 * cplx{b[12], 0} + a4 * cplx{b[10], 0} + a2 * cplx{b[8], 0};
  Matrix v = a6 * tmp + a6 * cplx{b[6], 0} + a4 * cplx{b[4], 0} + a2 * cplx{b[2], 0} +
             ident * cplx{b[0], 0};

  // R = (V - U)^-1 (V + U); then square s times.
  Matrix r = solve(v - u, v + u);
  for (int i = 0; i < s; ++i) r = r * r;
  return r;
}

Matrix expm_hermitian_propagator(const Matrix& h, double t) {
  QC_CHECK_MSG(h.is_hermitian(1e-8), "propagator requires Hermitian H");
  return expm(h * cplx{0.0, -t});
}

}  // namespace qc::linalg
