#include "ir/circuit.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/kernels.hpp"

namespace qc::ir {

QuantumCircuit::QuantumCircuit(int num_qubits, std::string name)
    : num_qubits_(num_qubits), name_(std::move(name)) {
  // Wide registers are fine for IR-level work (device-width circuits during
  // routing); only to_unitary() and the simulators need small registers.
  QC_CHECK_MSG(num_qubits > 0 && num_qubits <= 256, "qubit count out of supported range");
}

const Gate& QuantumCircuit::gate(std::size_t i) const {
  QC_CHECK(i < gates_.size());
  return gates_[i];
}

void QuantumCircuit::check_gate(const Gate& g) const {
  for (int q : g.qubits)
    QC_CHECK_MSG(q >= 0 && q < num_qubits_, "gate operand outside register");
}

void QuantumCircuit::append(Gate g) {
  check_gate(g);
  gates_.push_back(std::move(g));
}

void QuantumCircuit::append(const QuantumCircuit& other) {
  QC_CHECK(other.num_qubits_ <= num_qubits_);
  for (const Gate& g : other.gates_) append(g);
}

void QuantumCircuit::append_mapped(const QuantumCircuit& other,
                                   const std::vector<int>& mapping) {
  QC_CHECK(mapping.size() == static_cast<std::size_t>(other.num_qubits_));
  for (const Gate& g : other.gates_) {
    std::vector<int> qubits;
    qubits.reserve(g.qubits.size());
    for (int q : g.qubits) qubits.push_back(mapping[q]);
    append(Gate(g.kind, std::move(qubits), g.params));
  }
}

QuantumCircuit& QuantumCircuit::x(int q) { append(Gate(GateKind::X, {q})); return *this; }
QuantumCircuit& QuantumCircuit::y(int q) { append(Gate(GateKind::Y, {q})); return *this; }
QuantumCircuit& QuantumCircuit::z(int q) { append(Gate(GateKind::Z, {q})); return *this; }
QuantumCircuit& QuantumCircuit::h(int q) { append(Gate(GateKind::H, {q})); return *this; }
QuantumCircuit& QuantumCircuit::s(int q) { append(Gate(GateKind::S, {q})); return *this; }
QuantumCircuit& QuantumCircuit::sdg(int q) { append(Gate(GateKind::Sdg, {q})); return *this; }
QuantumCircuit& QuantumCircuit::t(int q) { append(Gate(GateKind::T, {q})); return *this; }
QuantumCircuit& QuantumCircuit::tdg(int q) { append(Gate(GateKind::Tdg, {q})); return *this; }
QuantumCircuit& QuantumCircuit::rx(double theta, int q) {
  append(Gate(GateKind::RX, {q}, {theta}));
  return *this;
}
QuantumCircuit& QuantumCircuit::ry(double theta, int q) {
  append(Gate(GateKind::RY, {q}, {theta}));
  return *this;
}
QuantumCircuit& QuantumCircuit::rz(double theta, int q) {
  append(Gate(GateKind::RZ, {q}, {theta}));
  return *this;
}
QuantumCircuit& QuantumCircuit::p(double phi, int q) {
  append(Gate(GateKind::P, {q}, {phi}));
  return *this;
}
QuantumCircuit& QuantumCircuit::u3(double theta, double phi, double lambda, int q) {
  append(Gate(GateKind::U3, {q}, {theta, phi, lambda}));
  return *this;
}
QuantumCircuit& QuantumCircuit::cx(int control, int target) {
  append(Gate(GateKind::CX, {control, target}));
  return *this;
}
QuantumCircuit& QuantumCircuit::cz(int control, int target) {
  append(Gate(GateKind::CZ, {control, target}));
  return *this;
}
QuantumCircuit& QuantumCircuit::cp(double phi, int control, int target) {
  append(Gate(GateKind::CP, {control, target}, {phi}));
  return *this;
}
QuantumCircuit& QuantumCircuit::swap(int a, int b) {
  append(Gate(GateKind::SWAP, {a, b}));
  return *this;
}
QuantumCircuit& QuantumCircuit::rzz(double theta, int a, int b) {
  append(Gate(GateKind::RZZ, {a, b}, {theta}));
  return *this;
}
QuantumCircuit& QuantumCircuit::rxx(double theta, int a, int b) {
  append(Gate(GateKind::RXX, {a, b}, {theta}));
  return *this;
}
QuantumCircuit& QuantumCircuit::ccx(int c0, int c1, int target) {
  append(Gate(GateKind::CCX, {c0, c1, target}));
  return *this;
}
QuantumCircuit& QuantumCircuit::mcx(const std::vector<int>& controls, int target) {
  std::vector<int> qubits = controls;
  qubits.push_back(target);
  append(Gate(GateKind::MCX, std::move(qubits)));
  return *this;
}
QuantumCircuit& QuantumCircuit::barrier() {
  std::vector<int> qubits(static_cast<std::size_t>(num_qubits_));
  std::iota(qubits.begin(), qubits.end(), 0);
  append(Gate(GateKind::Barrier, std::move(qubits)));
  return *this;
}
QuantumCircuit& QuantumCircuit::measure_all() {
  std::vector<int> qubits(static_cast<std::size_t>(num_qubits_));
  std::iota(qubits.begin(), qubits.end(), 0);
  append(Gate(GateKind::Measure, std::move(qubits)));
  return *this;
}

std::size_t QuantumCircuit::count(GateKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(gates_.begin(), gates_.end(),
                    [kind](const Gate& g) { return g.kind == kind; }));
}

std::size_t QuantumCircuit::two_qubit_gate_count() const {
  std::size_t n = 0;
  for (const Gate& g : gates_)
    if (gate_is_unitary(g.kind) && g.qubits.size() == 2) ++n;
  return n;
}

std::size_t QuantumCircuit::depth() const {
  std::vector<std::size_t> wire(static_cast<std::size_t>(num_qubits_), 0);
  std::size_t depth = 0;
  for (const Gate& g : gates_) {
    if (!gate_is_unitary(g.kind)) continue;
    std::size_t level = 0;
    for (int q : g.qubits) level = std::max(level, wire[q]);
    ++level;
    for (int q : g.qubits) wire[q] = level;
    depth = std::max(depth, level);
  }
  return depth;
}

std::size_t QuantumCircuit::two_qubit_depth() const {
  std::vector<std::size_t> wire(static_cast<std::size_t>(num_qubits_), 0);
  std::size_t depth = 0;
  for (const Gate& g : gates_) {
    if (!gate_is_unitary(g.kind) || g.qubits.size() < 2) continue;
    std::size_t level = 0;
    for (int q : g.qubits) level = std::max(level, wire[q]);
    ++level;
    for (int q : g.qubits) wire[q] = level;
    depth = std::max(depth, level);
  }
  return depth;
}

bool QuantumCircuit::in_cx_u3_basis() const {
  return std::all_of(gates_.begin(), gates_.end(), [](const Gate& g) {
    return g.kind == GateKind::CX || g.kind == GateKind::U3 ||
           g.kind == GateKind::Barrier || g.kind == GateKind::Measure;
  });
}

bool QuantumCircuit::has_measurements() const {
  return count(GateKind::Measure) > 0;
}

std::uint64_t QuantumCircuit::fingerprint() const {
  using common::hash_combine;
  std::uint64_t h = hash_combine(0x51c2c5a02720f5a5ULL,
                                 static_cast<std::uint64_t>(num_qubits_));
  for (const Gate& g : gates_) {
    h = hash_combine(h, static_cast<std::uint64_t>(g.kind));
    h = hash_combine(h, g.qubits.size());
    for (int q : g.qubits) h = hash_combine(h, static_cast<std::uint64_t>(q));
    h = hash_combine(h, g.params.size());
    for (double p : g.params) h = hash_combine(h, std::bit_cast<std::uint64_t>(p));
  }
  return h;
}

QuantumCircuit QuantumCircuit::inverse() const {
  QC_CHECK_MSG(!has_measurements(), "cannot invert a circuit with measurements");
  QuantumCircuit inv(num_qubits_, name_.empty() ? "" : name_ + "_inv");
  for (auto it = gates_.rbegin(); it != gates_.rend(); ++it) {
    if (it->kind == GateKind::Barrier) {
      inv.append(*it);
    } else {
      inv.append(it->inverse());
    }
  }
  return inv;
}

QuantumCircuit QuantumCircuit::remapped(const std::vector<int>& mapping,
                                        int new_width) const {
  QC_CHECK(mapping.size() == static_cast<std::size_t>(num_qubits_));
  QuantumCircuit out(new_width, name_);
  out.append_mapped(*this, mapping);
  return out;
}

QuantumCircuit QuantumCircuit::unitary_part() const {
  QuantumCircuit out(num_qubits_, name_);
  for (const Gate& g : gates_)
    if (gate_is_unitary(g.kind)) out.append(g);
  return out;
}

linalg::Matrix QuantumCircuit::to_unitary() const {
  QC_CHECK_MSG(num_qubits_ >= 1 && num_qubits_ <= 24,
               "to_unitary is only available for <= 24 qubit circuits");
  linalg::Matrix u = linalg::Matrix::identity(std::size_t{1} << num_qubits_);
  for (const Gate& g : gates_) {
    if (!gate_is_unitary(g.kind)) continue;
    linalg::left_apply(u, g.matrix(), g.qubits);
  }
  return u;
}

std::string QuantumCircuit::to_string() const {
  std::ostringstream os;
  os << "QuantumCircuit(" << (name_.empty() ? "<anon>" : name_) << ", " << num_qubits_
     << " qubits, " << gates_.size() << " gates)\n";
  for (const Gate& g : gates_) os << "  " << g.to_string() << "\n";
  return os.str();
}

}  // namespace qc::ir
