// OpenQASM 2.0 serialization.
//
// Emits circuits in the dialect Qiskit produces, and parses the subset this
// library emits (single register, the gate set in ir/gate.hpp, measure,
// barrier). Enables interchange of the approximate-circuit sets with
// external tooling.
#pragma once

#include <string>

#include "ir/circuit.hpp"

namespace qc::ir {

/// Renders the circuit as an OpenQASM 2.0 program (register name "q",
/// classical register "c" sized to the qubit count when measurements exist).
std::string to_qasm(const QuantumCircuit& circuit);

/// Parses an OpenQASM 2.0 program of the emitted subset. Throws
/// common::Error with a line-numbered message on malformed input.
QuantumCircuit from_qasm(const std::string& text);

}  // namespace qc::ir
