// QuantumCircuit: an ordered gate list over a fixed qubit count, with
// builder helpers, composition, statistics and a unitary builder.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ir/gate.hpp"
#include "linalg/matrix.hpp"

namespace qc::ir {

class QuantumCircuit {
 public:
  /// Null circuit (0 qubits): a placeholder distinguishable via is_null();
  /// every mutating/query call on it other than is_null()/empty() throws.
  QuantumCircuit() = default;
  explicit QuantumCircuit(int num_qubits, std::string name = "");

  bool is_null() const { return num_qubits_ == 0; }

  int num_qubits() const { return num_qubits_; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::vector<Gate>& gates() const { return gates_; }
  std::size_t size() const { return gates_.size(); }
  bool empty() const { return gates_.empty(); }
  const Gate& gate(std::size_t i) const;

  /// Appends a gate (validates qubit indices against num_qubits).
  void append(Gate g);
  /// Appends all gates of `other` (same width required).
  void append(const QuantumCircuit& other);
  /// Appends `other` with its qubit i mapped to `mapping[i]`.
  void append_mapped(const QuantumCircuit& other, const std::vector<int>& mapping);

  // ---- builder helpers -------------------------------------------------
  QuantumCircuit& x(int q);
  QuantumCircuit& y(int q);
  QuantumCircuit& z(int q);
  QuantumCircuit& h(int q);
  QuantumCircuit& s(int q);
  QuantumCircuit& sdg(int q);
  QuantumCircuit& t(int q);
  QuantumCircuit& tdg(int q);
  QuantumCircuit& rx(double theta, int q);
  QuantumCircuit& ry(double theta, int q);
  QuantumCircuit& rz(double theta, int q);
  QuantumCircuit& p(double phi, int q);
  QuantumCircuit& u3(double theta, double phi, double lambda, int q);
  QuantumCircuit& cx(int control, int target);
  QuantumCircuit& cz(int control, int target);
  QuantumCircuit& cp(double phi, int control, int target);
  QuantumCircuit& swap(int a, int b);
  QuantumCircuit& rzz(double theta, int a, int b);
  QuantumCircuit& rxx(double theta, int a, int b);
  QuantumCircuit& ccx(int c0, int c1, int target);
  QuantumCircuit& mcx(const std::vector<int>& controls, int target);
  QuantumCircuit& barrier();
  QuantumCircuit& measure_all();

  // ---- statistics ------------------------------------------------------
  /// Number of gates of a given kind.
  std::size_t count(GateKind kind) const;
  /// Number of two-qubit unitary gates (the paper's "CNOT count" once
  /// circuits are in the {CX,U3} basis).
  std::size_t two_qubit_gate_count() const;
  /// Longest dependency chain of unitary gates (circuit depth).
  std::size_t depth() const;
  /// Depth counting only two-qubit gates (the paper's "CNOT depth").
  std::size_t two_qubit_depth() const;
  /// True if every gate is CX or U3 (hardware basis).
  bool in_cx_u3_basis() const;
  /// True if circuit contains a Measure gate.
  bool has_measurements() const;
  /// Order-dependent 64-bit content hash over (width, gates, operands,
  /// parameter bits); the circuit's name is excluded. Used as a cache key by
  /// the execution engine, so equal-content circuits share transpile work.
  std::uint64_t fingerprint() const;

  // ---- transforms ------------------------------------------------------
  /// Reverse circuit with inverted gates; throws if a Measure is present.
  QuantumCircuit inverse() const;
  /// Same gates on a `new_width`-qubit register with qubit i -> mapping[i].
  QuantumCircuit remapped(const std::vector<int>& mapping, int new_width) const;
  /// Circuit without Barrier/Measure gates.
  QuantumCircuit unitary_part() const;

  /// Full 2^n x 2^n unitary of the unitary part (gates applied in order,
  /// i.e. U = G_last ... G_1 G_0).
  linalg::Matrix to_unitary() const;

  std::string to_string() const;

 private:
  void check_gate(const Gate& g) const;

  int num_qubits_ = 0;
  std::string name_;
  std::vector<Gate> gates_;
};

}  // namespace qc::ir
