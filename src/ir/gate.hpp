// Gate set and gate matrices.
//
// The kinds cover everything the paper's workloads and transpiler need:
// the {CX, U3} hardware basis, the standard named gates used to express
// reference circuits (Grover, Toffoli, TFIM Trotter steps), multi-control X,
// and the non-unitary markers (measure, barrier).
#pragma once

#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace qc::ir {

enum class GateKind {
  I,
  X,
  Y,
  Z,
  H,
  S,
  Sdg,
  T,
  Tdg,
  SX,
  RX,
  RY,
  RZ,
  P,   // phase gate (a.k.a. u1)
  U2,  // u2(phi, lambda)
  U3,  // u3(theta, phi, lambda)
  CX,
  CY,
  CZ,
  CH,
  CP,   // controlled phase
  CRX,
  CRY,
  CRZ,
  SWAP,
  RXX,  // exp(-i theta/2 X⊗X)
  RYY,
  RZZ,
  CCX,   // Toffoli
  CSWAP,
  MCX,   // multi-control X, any number of controls; last qubit is the target
  Barrier,
  Measure,
};

/// Canonical lowercase mnemonic ("cx", "u3", ...). Stable; used by QASM I/O.
const std::string& gate_name(GateKind kind);

/// Inverse lookup of gate_name; throws on unknown names.
GateKind gate_kind_from_name(const std::string& name);

/// Qubit arity; -1 for variable arity (MCX, Barrier, Measure).
int gate_num_qubits(GateKind kind);

/// Number of real parameters the kind takes.
int gate_num_params(GateKind kind);

/// True for kinds that have a unitary matrix (everything except
/// Barrier/Measure).
bool gate_is_unitary(GateKind kind);

/// One gate application: kind + qubit operands + real parameters.
/// For controlled kinds, controls come first and the target is last
/// (e.g. CX{control, target}; MCX{c0, c1, ..., target}).
struct Gate {
  GateKind kind;
  std::vector<int> qubits;
  std::vector<double> params;

  Gate(GateKind k, std::vector<int> q, std::vector<double> p = {});

  bool operator==(const Gate& rhs) const;

  /// Unitary of this gate over its own qubits (dimension 2^arity), where
  /// sub-basis bit b corresponds to qubits[b]. Throws for Barrier/Measure.
  linalg::Matrix matrix() const;

  /// Gate with the inverse unitary (adjoint); throws for Barrier/Measure.
  Gate inverse() const;

  std::string to_string() const;
};

/// Matrix for a kind with explicit params over `arity` qubits; used for MCX
/// where the size depends on operand count.
linalg::Matrix gate_matrix(GateKind kind, const std::vector<double>& params,
                           std::size_t arity);

}  // namespace qc::ir
