#include "ir/qasm.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace qc::ir {

namespace {

std::string format_param(double v) {
  // High precision so round-trips preserve synthesized angles exactly enough.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Evaluates the arithmetic subset QASM params use: numbers, pi, unary minus,
/// products/quotients like "pi/2", "-3*pi/4", and sums/differences.
double eval_expr(const std::string& raw, int line_no) {
  const std::string s = common::trim(raw);
  QC_CHECK_MSG(!s.empty(), "empty parameter at line " + std::to_string(line_no));

  // Split on top-level + / - (respecting a leading sign).
  int depth = 0;
  for (std::size_t i = s.size(); i-- > 1;) {
    const char c = s[i];
    if (c == ')') ++depth;
    if (c == '(') --depth;
    if (depth == 0 && (c == '+' || c == '-')) {
      const char prev = s[i - 1];
      if (prev == 'e' || prev == 'E' || prev == '*' || prev == '/' || prev == '+' ||
          prev == '-')
        continue;  // exponent or operator context, not a binary op
      const double lhs = eval_expr(s.substr(0, i), line_no);
      const double rhs = eval_expr(s.substr(i + 1), line_no);
      return c == '+' ? lhs + rhs : lhs - rhs;
    }
  }
  // Split on top-level * and /.
  depth = 0;
  for (std::size_t i = s.size(); i-- > 1;) {
    const char c = s[i];
    if (c == ')') ++depth;
    if (c == '(') --depth;
    if (depth == 0 && (c == '*' || c == '/')) {
      const double lhs = eval_expr(s.substr(0, i), line_no);
      const double rhs = eval_expr(s.substr(i + 1), line_no);
      if (c == '*') return lhs * rhs;
      QC_CHECK_MSG(rhs != 0.0, "division by zero at line " + std::to_string(line_no));
      return lhs / rhs;
    }
  }
  if (s.front() == '(' && s.back() == ')') return eval_expr(s.substr(1, s.size() - 2), line_no);
  if (s.front() == '-') return -eval_expr(s.substr(1), line_no);
  if (s.front() == '+') return eval_expr(s.substr(1), line_no);
  if (s == "pi") return 3.14159265358979323846;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  QC_CHECK_MSG(end && *end == '\0',
               "bad numeric parameter '" + s + "' at line " + std::to_string(line_no));
  return v;
}

int parse_qubit_ref(const std::string& tok, int line_no) {
  const std::string t = common::trim(tok);
  QC_CHECK_MSG(common::starts_with(t, "q[") && t.back() == ']',
               "expected q[i] operand at line " + std::to_string(line_no));
  return std::atoi(t.substr(2, t.size() - 3).c_str());
}

}  // namespace

std::string to_qasm(const QuantumCircuit& circuit) {
  std::ostringstream os;
  os << "OPENQASM 2.0;\n";
  os << "include \"qelib1.inc\";\n";
  os << "qreg q[" << circuit.num_qubits() << "];\n";
  if (circuit.has_measurements()) os << "creg c[" << circuit.num_qubits() << "];\n";

  for (const Gate& g : circuit.gates()) {
    switch (g.kind) {
      case GateKind::Barrier: {
        os << "barrier";
        for (std::size_t i = 0; i < g.qubits.size(); ++i)
          os << (i ? "," : " ") << "q[" << g.qubits[i] << "]";
        os << ";\n";
        break;
      }
      case GateKind::Measure: {
        for (int q : g.qubits) os << "measure q[" << q << "] -> c[" << q << "];\n";
        break;
      }
      case GateKind::MCX: {
        // qelib has no generic mcx; emit the Qiskit names for small arities
        // and a comment-tagged custom op otherwise.
        const std::size_t nc = g.qubits.size() - 1;
        const char* name = nc == 1 ? "cx" : nc == 2 ? "ccx" : nc == 3 ? "c3x" : "mcx";
        os << name;
        for (std::size_t i = 0; i < g.qubits.size(); ++i)
          os << (i ? "," : " ") << "q[" << g.qubits[i] << "]";
        os << ";\n";
        break;
      }
      default: {
        os << gate_name(g.kind);
        if (!g.params.empty()) {
          os << '(';
          for (std::size_t i = 0; i < g.params.size(); ++i) {
            if (i) os << ',';
            os << format_param(g.params[i]);
          }
          os << ')';
        }
        for (std::size_t i = 0; i < g.qubits.size(); ++i)
          os << (i ? "," : " ") << "q[" << g.qubits[i] << "]";
        os << ";\n";
      }
    }
  }
  return os.str();
}

QuantumCircuit from_qasm(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  int num_qubits = -1;
  std::vector<Gate> pending;

  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments.
    const std::size_t comment = line.find("//");
    if (comment != std::string::npos) line = line.substr(0, comment);
    line = common::trim(line);
    if (line.empty()) continue;
    QC_CHECK_MSG(line.back() == ';', "missing ';' at line " + std::to_string(line_no));
    line.pop_back();
    line = common::trim(line);

    if (common::starts_with(line, "OPENQASM") || common::starts_with(line, "include") ||
        common::starts_with(line, "creg"))
      continue;
    if (common::starts_with(line, "qreg")) {
      const std::size_t lb = line.find('[');
      const std::size_t rb = line.find(']');
      QC_CHECK_MSG(lb != std::string::npos && rb > lb,
                   "bad qreg at line " + std::to_string(line_no));
      num_qubits = std::atoi(line.substr(lb + 1, rb - lb - 1).c_str());
      continue;
    }
    if (common::starts_with(line, "measure")) {
      const std::size_t arrow = line.find("->");
      QC_CHECK_MSG(arrow != std::string::npos,
                   "bad measure at line " + std::to_string(line_no));
      const int q = parse_qubit_ref(common::trim(line.substr(7, arrow - 7)), line_no);
      pending.emplace_back(GateKind::Measure, std::vector<int>{q});
      continue;
    }

    // Generic: name[(params)] q[a],q[b],...
    std::string head = line;
    std::vector<double> params;
    const std::size_t paren = line.find('(');
    std::size_t operands_at;
    if (paren != std::string::npos && paren < line.find(' ')) {
      const std::size_t close = line.find(')', paren);
      QC_CHECK_MSG(close != std::string::npos, "unclosed '(' at line " + std::to_string(line_no));
      head = line.substr(0, paren);
      for (const std::string& p :
           common::split(line.substr(paren + 1, close - paren - 1), ','))
        params.push_back(eval_expr(p, line_no));
      operands_at = close + 1;
    } else {
      const std::size_t sp = line.find(' ');
      QC_CHECK_MSG(sp != std::string::npos, "missing operands at line " + std::to_string(line_no));
      head = line.substr(0, sp);
      operands_at = sp + 1;
    }
    std::vector<int> qubits;
    for (const std::string& tok : common::split(line.substr(operands_at), ','))
      qubits.push_back(parse_qubit_ref(tok, line_no));

    std::string name = common::trim(head);
    GateKind kind;
    if (name == "c3x" || name == "c4x" || name == "mcx") {
      kind = GateKind::MCX;
    } else {
      kind = gate_kind_from_name(name);
    }
    pending.emplace_back(kind, std::move(qubits), std::move(params));
  }

  QC_CHECK_MSG(num_qubits > 0, "QASM program declared no qreg");
  QuantumCircuit circuit(num_qubits);
  // Coalesce consecutive single-qubit measures into one gate when they cover
  // distinct qubits (mirrors measure_all round-trips); otherwise keep as-is.
  for (auto& g : pending) circuit.append(std::move(g));
  return circuit;
}

}  // namespace qc::ir
