#include "ir/dag.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qc::ir {

DagView::DagView(const QuantumCircuit& circuit) : circuit_(circuit) {
  const std::size_t n = circuit.size();
  next_.resize(n);
  prev_.resize(n);
  front_.assign(static_cast<std::size_t>(circuit.num_qubits()), kNone);

  std::vector<std::size_t> last(static_cast<std::size_t>(circuit.num_qubits()), kNone);
  for (std::size_t i = 0; i < n; ++i) {
    const Gate& g = circuit.gate(i);
    next_[i].assign(g.qubits.size(), kNone);
    prev_[i].assign(g.qubits.size(), kNone);
    for (std::size_t k = 0; k < g.qubits.size(); ++k) {
      const int q = g.qubits[k];
      const std::size_t p = last[q];
      prev_[i][k] = p;
      if (p == kNone) {
        front_[q] = i;
      } else {
        const Gate& pg = circuit.gate(p);
        for (std::size_t pk = 0; pk < pg.qubits.size(); ++pk)
          if (pg.qubits[pk] == q) next_[p][pk] = i;
      }
      last[q] = i;
    }
  }
}

std::size_t DagView::operand_slot(std::size_t i, int qubit) const {
  const Gate& g = circuit_.gate(i);
  for (std::size_t k = 0; k < g.qubits.size(); ++k)
    if (g.qubits[k] == qubit) return k;
  QC_CHECK_MSG(false, "gate does not act on the requested qubit");
  return kNone;
}

std::size_t DagView::next_on_qubit(std::size_t i, int qubit) const {
  QC_CHECK(i < next_.size());
  return next_[i][operand_slot(i, qubit)];
}

std::size_t DagView::prev_on_qubit(std::size_t i, int qubit) const {
  QC_CHECK(i < prev_.size());
  return prev_[i][operand_slot(i, qubit)];
}

std::size_t DagView::front_on_qubit(int qubit) const {
  QC_CHECK(qubit >= 0 && qubit < circuit_.num_qubits());
  return front_[qubit];
}

std::vector<std::size_t> DagView::predecessors(std::size_t i) const {
  QC_CHECK(i < prev_.size());
  std::vector<std::size_t> out;
  for (std::size_t p : prev_[i])
    if (p != kNone) out.push_back(p);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::size_t> DagView::successors(std::size_t i) const {
  QC_CHECK(i < next_.size());
  std::vector<std::size_t> out;
  for (std::size_t s : next_[i])
    if (s != kNone) out.push_back(s);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace qc::ir
