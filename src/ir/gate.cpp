#include "ir/gate.hpp"

#include <cmath>
#include <map>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace qc::ir {

using linalg::cplx;
using linalg::Matrix;

namespace {

struct KindInfo {
  const char* name;
  int num_qubits;  // -1: variable
  int num_params;
  bool unitary;
};

const std::map<GateKind, KindInfo>& kind_table() {
  static const std::map<GateKind, KindInfo> table = {
      {GateKind::I, {"id", 1, 0, true}},       {GateKind::X, {"x", 1, 0, true}},
      {GateKind::Y, {"y", 1, 0, true}},        {GateKind::Z, {"z", 1, 0, true}},
      {GateKind::H, {"h", 1, 0, true}},        {GateKind::S, {"s", 1, 0, true}},
      {GateKind::Sdg, {"sdg", 1, 0, true}},    {GateKind::T, {"t", 1, 0, true}},
      {GateKind::Tdg, {"tdg", 1, 0, true}},    {GateKind::SX, {"sx", 1, 0, true}},
      {GateKind::RX, {"rx", 1, 1, true}},      {GateKind::RY, {"ry", 1, 1, true}},
      {GateKind::RZ, {"rz", 1, 1, true}},      {GateKind::P, {"p", 1, 1, true}},
      {GateKind::U2, {"u2", 1, 2, true}},      {GateKind::U3, {"u3", 1, 3, true}},
      {GateKind::CX, {"cx", 2, 0, true}},      {GateKind::CY, {"cy", 2, 0, true}},
      {GateKind::CZ, {"cz", 2, 0, true}},      {GateKind::CH, {"ch", 2, 0, true}},
      {GateKind::CP, {"cp", 2, 1, true}},      {GateKind::CRX, {"crx", 2, 1, true}},
      {GateKind::CRY, {"cry", 2, 1, true}},    {GateKind::CRZ, {"crz", 2, 1, true}},
      {GateKind::SWAP, {"swap", 2, 0, true}},  {GateKind::RXX, {"rxx", 2, 1, true}},
      {GateKind::RYY, {"ryy", 2, 1, true}},    {GateKind::RZZ, {"rzz", 2, 1, true}},
      {GateKind::CCX, {"ccx", 3, 0, true}},    {GateKind::CSWAP, {"cswap", 3, 0, true}},
      {GateKind::MCX, {"mcx", -1, 0, true}},   {GateKind::Barrier, {"barrier", -1, 0, false}},
      {GateKind::Measure, {"measure", -1, 0, false}},
  };
  return table;
}

const KindInfo& info(GateKind kind) {
  const auto it = kind_table().find(kind);
  QC_CHECK_MSG(it != kind_table().end(), "unknown gate kind");
  return it->second;
}

Matrix mat1(cplx a, cplx b, cplx c, cplx d) { return Matrix(2, 2, {a, b, c, d}); }

/// Controlled-U with control = sub-bit 0, target = sub-bit 1
/// (sub-index m: bit0 = qubits[0] = control, bit1 = qubits[1] = target).
Matrix controlled(const Matrix& u) {
  Matrix out = Matrix::identity(4);
  // States with control bit set: m = 1 (t=0) and m = 3 (t=1).
  out(1, 1) = u(0, 0);
  out(1, 3) = u(0, 1);
  out(3, 1) = u(1, 0);
  out(3, 3) = u(1, 1);
  return out;
}

Matrix u3_matrix(double theta, double phi, double lambda) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  const cplx eil = std::polar(1.0, lambda);
  const cplx eip = std::polar(1.0, phi);
  return mat1(cplx{c, 0.0}, -eil * s, eip * s, eip * eil * c);
}

Matrix two_qubit_rotation(const Matrix& pauli_pair, double theta) {
  // exp(-i theta/2 P) for P with P^2 = I: cos(t/2) I - i sin(t/2) P.
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  Matrix out = Matrix::identity(4) * cplx{c, 0.0};
  out += pauli_pair * cplx{0.0, -s};
  return out;
}

}  // namespace

const std::string& gate_name(GateKind kind) {
  static std::map<GateKind, std::string> names = [] {
    std::map<GateKind, std::string> m;
    for (const auto& [k, v] : kind_table()) m[k] = v.name;
    return m;
  }();
  return names.at(kind);
}

GateKind gate_kind_from_name(const std::string& name) {
  static const std::map<std::string, GateKind> lookup = [] {
    std::map<std::string, GateKind> m;
    for (const auto& [k, v] : kind_table()) m[v.name] = k;
    // QASM aliases.
    m["u1"] = GateKind::P;
    m["u"] = GateKind::U3;
    m["toffoli"] = GateKind::CCX;
    return m;
  }();
  const auto it = lookup.find(common::to_lower(name));
  QC_CHECK_MSG(it != lookup.end(), "unknown gate name: " + name);
  return it->second;
}

int gate_num_qubits(GateKind kind) { return info(kind).num_qubits; }
int gate_num_params(GateKind kind) { return info(kind).num_params; }
bool gate_is_unitary(GateKind kind) { return info(kind).unitary; }

Gate::Gate(GateKind k, std::vector<int> q, std::vector<double> p)
    : kind(k), qubits(std::move(q)), params(std::move(p)) {
  const KindInfo& ki = info(kind);
  if (ki.num_qubits >= 0) {
    QC_CHECK_MSG(static_cast<int>(qubits.size()) == ki.num_qubits,
                 std::string("wrong qubit count for ") + ki.name);
  } else if (kind == GateKind::MCX) {
    QC_CHECK_MSG(qubits.size() >= 2, "mcx needs at least one control and a target");
  } else {
    QC_CHECK_MSG(!qubits.empty(), "variable-arity gate needs at least one qubit");
  }
  QC_CHECK_MSG(static_cast<int>(params.size()) == ki.num_params,
               std::string("wrong param count for ") + ki.name);
  for (std::size_t i = 0; i < qubits.size(); ++i) {
    QC_CHECK(qubits[i] >= 0);
    for (std::size_t j = i + 1; j < qubits.size(); ++j)
      QC_CHECK_MSG(qubits[i] != qubits[j], "duplicate qubit operand");
  }
}

bool Gate::operator==(const Gate& rhs) const {
  return kind == rhs.kind && qubits == rhs.qubits && params == rhs.params;
}

Matrix gate_matrix(GateKind kind, const std::vector<double>& params, std::size_t arity) {
  const cplx i{0.0, 1.0};
  const double is2 = 1.0 / std::sqrt(2.0);
  switch (kind) {
    case GateKind::I: return Matrix::identity(2);
    case GateKind::X: return mat1(0, 1, 1, 0);
    case GateKind::Y: return mat1(0, -i, i, 0);
    case GateKind::Z: return mat1(1, 0, 0, -1);
    case GateKind::H: return mat1(is2, is2, is2, -is2);
    case GateKind::S: return mat1(1, 0, 0, i);
    case GateKind::Sdg: return mat1(1, 0, 0, -i);
    case GateKind::T: return mat1(1, 0, 0, std::polar(1.0, 3.141592653589793 / 4.0));
    case GateKind::Tdg: return mat1(1, 0, 0, std::polar(1.0, -3.141592653589793 / 4.0));
    case GateKind::SX:
      return mat1(cplx{0.5, 0.5}, cplx{0.5, -0.5}, cplx{0.5, -0.5}, cplx{0.5, 0.5});
    case GateKind::RX: {
      const double c = std::cos(params[0] / 2.0), s = std::sin(params[0] / 2.0);
      return mat1(cplx{c, 0}, -i * s, -i * s, cplx{c, 0});
    }
    case GateKind::RY: {
      const double c = std::cos(params[0] / 2.0), s = std::sin(params[0] / 2.0);
      return mat1(cplx{c, 0}, cplx{-s, 0}, cplx{s, 0}, cplx{c, 0});
    }
    case GateKind::RZ: {
      return mat1(std::polar(1.0, -params[0] / 2.0), 0, 0, std::polar(1.0, params[0] / 2.0));
    }
    case GateKind::P: return mat1(1, 0, 0, std::polar(1.0, params[0]));
    case GateKind::U2:
      return u3_matrix(3.141592653589793 / 2.0, params[0], params[1]);
    case GateKind::U3: return u3_matrix(params[0], params[1], params[2]);
    case GateKind::CX: return controlled(mat1(0, 1, 1, 0));
    case GateKind::CY: return controlled(mat1(0, -i, i, 0));
    case GateKind::CZ: return controlled(mat1(1, 0, 0, -1));
    case GateKind::CH: return controlled(mat1(is2, is2, is2, -is2));
    case GateKind::CP: return controlled(mat1(1, 0, 0, std::polar(1.0, params[0])));
    case GateKind::CRX:
      return controlled(gate_matrix(GateKind::RX, params, 1));
    case GateKind::CRY:
      return controlled(gate_matrix(GateKind::RY, params, 1));
    case GateKind::CRZ:
      return controlled(gate_matrix(GateKind::RZ, params, 1));
    case GateKind::SWAP: {
      Matrix m = Matrix::zeros(4, 4);
      m(0, 0) = 1;
      m(1, 2) = 1;
      m(2, 1) = 1;
      m(3, 3) = 1;
      return m;
    }
    case GateKind::RXX: {
      Matrix xx = kron(mat1(0, 1, 1, 0), mat1(0, 1, 1, 0));
      return two_qubit_rotation(xx, params[0]);
    }
    case GateKind::RYY: {
      Matrix yy = kron(mat1(0, -i, i, 0), mat1(0, -i, i, 0));
      return two_qubit_rotation(yy, params[0]);
    }
    case GateKind::RZZ: {
      Matrix zz = kron(mat1(1, 0, 0, -1), mat1(1, 0, 0, -1));
      return two_qubit_rotation(zz, params[0]);
    }
    case GateKind::CCX: {
      Matrix m = Matrix::identity(8);
      // controls = sub-bits 0,1; target = sub-bit 2. Swap |011> <-> |111>.
      m(3, 3) = 0;
      m(7, 7) = 0;
      m(3, 7) = 1;
      m(7, 3) = 1;
      return m;
    }
    case GateKind::CSWAP: {
      Matrix m = Matrix::identity(8);
      // control = sub-bit 0; swap sub-bits 1,2 when control set:
      // |c=1, b1=1, b2=0> = 011b? m index: bit0=c, bit1, bit2.
      // states with c=1: m in {1,3,5,7}; swap bit1<->bit2: 3 (011) <-> 5 (101).
      m(3, 3) = 0;
      m(5, 5) = 0;
      m(3, 5) = 1;
      m(5, 3) = 1;
      return m;
    }
    case GateKind::MCX: {
      QC_CHECK(arity >= 2);
      const std::size_t dim = std::size_t{1} << arity;
      Matrix m = Matrix::identity(dim);
      // Controls = sub-bits 0..arity-2, target = sub-bit arity-1.
      const std::size_t controls_mask = (std::size_t{1} << (arity - 1)) - 1;
      const std::size_t target_bit = std::size_t{1} << (arity - 1);
      const std::size_t a = controls_mask;               // all controls set, target 0
      const std::size_t b = controls_mask | target_bit;  // all controls set, target 1
      m(a, a) = 0;
      m(b, b) = 0;
      m(a, b) = 1;
      m(b, a) = 1;
      return m;
    }
    case GateKind::Barrier:
    case GateKind::Measure:
      QC_CHECK_MSG(false, "non-unitary gate has no matrix");
  }
  QC_CHECK_MSG(false, "unhandled gate kind");
  return {};
}

Matrix Gate::matrix() const { return gate_matrix(kind, params, qubits.size()); }

Gate Gate::inverse() const {
  QC_CHECK_MSG(gate_is_unitary(kind), "cannot invert a non-unitary gate");
  switch (kind) {
    case GateKind::S: return Gate(GateKind::Sdg, qubits);
    case GateKind::Sdg: return Gate(GateKind::S, qubits);
    case GateKind::T: return Gate(GateKind::Tdg, qubits);
    case GateKind::Tdg: return Gate(GateKind::T, qubits);
    case GateKind::RX:
    case GateKind::RY:
    case GateKind::RZ:
    case GateKind::P:
    case GateKind::CP:
    case GateKind::CRX:
    case GateKind::CRY:
    case GateKind::CRZ:
    case GateKind::RXX:
    case GateKind::RYY:
    case GateKind::RZZ:
      return Gate(kind, qubits, {-params[0]});
    case GateKind::U2:
      // u2(phi, lambda)^-1 = u3(-pi/2, -lambda, -phi)
      return Gate(GateKind::U3, qubits, {-3.141592653589793 / 2.0, -params[1], -params[0]});
    case GateKind::U3:
      return Gate(GateKind::U3, qubits, {-params[0], -params[2], -params[1]});
    case GateKind::SX: {
      // sx^-1 = sxdg = rx(-pi/2) = u3(-pi/2, -pi/2, pi/2) up to global phase.
      return Gate(GateKind::U3, qubits,
                  {-3.141592653589793 / 2.0, -3.141592653589793 / 2.0,
                   3.141592653589793 / 2.0});
    }
    default:
      return *this;  // self-inverse kinds (X, Y, Z, H, CX, CZ, SWAP, CCX, MCX, ...)
  }
}

std::string Gate::to_string() const {
  std::ostringstream os;
  os << gate_name(kind);
  if (!params.empty()) {
    os << '(';
    for (std::size_t i = 0; i < params.size(); ++i) {
      if (i) os << ", ";
      os << common::format_double(params[i]);
    }
    os << ')';
  }
  os << ' ';
  for (std::size_t i = 0; i < qubits.size(); ++i) {
    if (i) os << ", ";
    os << 'q' << qubits[i];
  }
  return os.str();
}

}  // namespace qc::ir
