// Lightweight DAG view over a QuantumCircuit.
//
// Gate order in the circuit is already a topological order; the DAG adds the
// per-qubit wiring (previous/next gate on each wire) that peephole passes
// need to find adjacent-gate pairs (CX-CX cancellation, U3 fusion) without
// quadratic rescans.
#pragma once

#include <cstddef>
#include <vector>

#include "ir/circuit.hpp"

namespace qc::ir {

class DagView {
 public:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  explicit DagView(const QuantumCircuit& circuit);

  std::size_t num_nodes() const { return next_.size(); }

  /// Index of the next gate touching `qubit` after gate `i`; kNone at the end
  /// of the wire. `i` must act on `qubit`.
  std::size_t next_on_qubit(std::size_t i, int qubit) const;
  /// Index of the previous gate touching `qubit` before gate `i`.
  std::size_t prev_on_qubit(std::size_t i, int qubit) const;

  /// First gate on the wire, or kNone.
  std::size_t front_on_qubit(int qubit) const;
  /// All direct predecessors (dedup'd) of gate i.
  std::vector<std::size_t> predecessors(std::size_t i) const;
  /// All direct successors (dedup'd) of gate i.
  std::vector<std::size_t> successors(std::size_t i) const;

 private:
  const QuantumCircuit& circuit_;
  // next_[i][k] / prev_[i][k]: neighbour on wire circuit.gate(i).qubits[k].
  std::vector<std::vector<std::size_t>> next_;
  std::vector<std::vector<std::size_t>> prev_;
  std::vector<std::size_t> front_;  // per qubit

  std::size_t operand_slot(std::size_t i, int qubit) const;
};

}  // namespace qc::ir
