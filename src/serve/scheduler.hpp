// Admission control and fair scheduling for server jobs.
//
// The server multiplexes every connection onto one worker pool; without
// admission control a single chatty tenant would starve everyone else and an
// overload would grow the queue without bound. Policy:
//
//  * Per-tenant FIFO queues, drained round-robin: each scheduling decision
//    advances a cursor over the tenants that currently have work, so a
//    tenant submitting 1000 jobs and a tenant submitting 1 alternate 1:1,
//    not 1000:1.
//  * Two caps, checked at submit time: a total queue cap (protects memory
//    and tail latency for everyone) and a per-tenant cap (stops one tenant
//    from owning the whole buffer). A submit over either cap is rejected
//    immediately with a reason — the server turns that into a structured
//    "overloaded" reply, which is backpressure a client can act on.
//  * stop() cancels the shared CancelToken and drains: queued jobs still
//    run, but see a cancelled token (and an already-expired Deadline derived
//    from it), so they exit on their next poll. Every accepted job runs
//    exactly once — accepted-but-dropped jobs would break the server's
//    one-reply-per-request guarantee.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>
#include <condition_variable>

#include "common/deadline.hpp"

namespace qc::serve {

struct SchedulerOptions {
  std::size_t workers = 4;
  std::size_t queue_cap = 256;      // total queued jobs across tenants
  std::size_t per_tenant_cap = 128; // queued jobs for any single tenant
};

struct SchedulerStats {
  std::size_t queued = 0;        // currently waiting
  std::size_t running = 0;       // currently on a worker
  std::size_t tenants = 0;       // tenants with queued work
  std::uint64_t submitted = 0;   // accepted jobs, lifetime
  std::uint64_t rejected = 0;    // cap rejections, lifetime
  std::uint64_t completed = 0;   // jobs whose body returned, lifetime
  std::size_t peak_queued = 0;   // high-water mark (bounded-depth evidence)
  std::uint64_t surplus_spawned = 0;  // replacement workers, lifetime
  std::size_t live_workers = 0;  // threads currently in the loop
};

class JobScheduler {
 public:
  /// A job body; receives the scheduler's shared cancel token (cancelled on
  /// stop()) to merge into its own deadline. Must not throw — the server
  /// wraps every body in its own catch-all so a reply always goes out.
  using Job = std::function<void(const common::CancelToken&)>;

  explicit JobScheduler(const SchedulerOptions& options = {});
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Enqueues a job for `tenant`. Returns false (and fills `reject_reason`)
  /// when a queue cap is hit or the scheduler is stopping; the job is then
  /// never run.
  bool submit(const std::string& tenant, Job job,
              std::string* reject_reason = nullptr);

  /// Cancels the shared token, wakes all workers, runs every queued job to
  /// completion (under the cancelled token), and joins. Idempotent.
  void stop();

  /// Adds one temporary worker thread to replace a slot wedged by a reaped
  /// job (see watchdog.hpp). Surplus workers retire — the next worker to
  /// finish a job exits instead of looping — once the pool is back above its
  /// configured size, so repeated reaps do not grow the pool permanently.
  /// No-op while stopping.
  void spawn_surplus_worker();

  /// The server calls this when a reaped job's body finally returns: its
  /// thread is no longer wedged, so the pool is genuinely oversize and the
  /// next finishing worker retires.
  void note_wedged_worker_returned();

  /// Blocks until no job is queued or running (test/soak synchronization).
  void wait_idle();

  SchedulerStats stats() const;

  const common::CancelToken& cancel_token() const { return cancel_; }

 private:
  void worker_loop();
  /// Pops the next job round-robin; empty optional when queues are empty.
  bool pop_next(Job* out);

  SchedulerOptions options_;
  common::CancelToken cancel_ = common::CancelToken::make();

  mutable std::mutex mu_;
  std::condition_variable cv_;        // workers: work available / stopping
  std::condition_variable idle_cv_;   // wait_idle(): queue drained
  std::map<std::string, std::deque<Job>> queues_;
  std::vector<std::string> rr_tenants_;  // round-robin order of active tenants
  std::size_t rr_cursor_ = 0;
  std::size_t queued_ = 0;
  std::size_t running_ = 0;
  std::size_t live_workers_ = 0;  // threads currently inside worker_loop
  std::size_t wedged_ = 0;        // reaped jobs' threads not yet returned
  bool stopping_ = false;
  SchedulerStats lifetime_;  // submitted/rejected/completed/peak under mu_

  std::vector<std::thread> workers_;
};

}  // namespace qc::serve
