// qapprox wire-protocol message schema (see DESIGN.md §11 for the grammar).
//
// Requests and replies are single JSON objects, one per frame:
//
//   request:  {"id": <string|number>, "type": "ping" | "simulate" |
//              "synthesize" | "stats" | "metrics" | "shutdown",
//              "tenant": "team-a",          // optional, default "anon"
//              "deadline_ms": 2000,          // optional soft budget
//              "idem": "client-42-req-7",    // optional idempotency key
//              "params": { ... }}            // type-specific
//
//   reply:    {"id": <echoed>, "status": "ok" | "degraded" | "error",
//              "result": { ... },            // ok / degraded
//              "degraded": "<why>",          // degraded only
//              "error": {"kind": "<taxonomy>", "message": "..."}}  // error
//
// Exactly one reply per request, correlated by id; replies stream back in
// completion order, not submission order. "degraded" means the job finished
// and its result is usable but annotated (deadline-truncated shots,
// synthesis fallback, injected-fault retries). Error kinds extend the
// library taxonomy (contract/synthesis/simulation/timeout) with transport
// and admission kinds: bad_request, overloaded, shutdown, internal, and
// reaped (watchdog killed a hung job).
//
// "idem" makes a job request safe to retry: two requests carrying the same
// key execute at most once, and the later one receives the cached reply
// (stamped "replayed": true) or attaches to the in-flight execution. Keys
// are scoped per tenant. Inline types (ping/stats/metrics/shutdown) ignore
// the key — they are naturally idempotent or intentionally not.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/json.hpp"

namespace qc::serve {

/// Request types the server dispatches. Metrics serves the live observability
/// registry (params {"format": "json" | "prometheus"}) inline, never queued
/// behind jobs — a dashboard poll must not wait for a synthesis batch.
enum class RequestType { Ping, Simulate, Synthesize, Stats, Metrics, Shutdown };

const char* request_type_name(RequestType type);

/// Parsed request envelope (params stay schemaless; job builders interpret
/// them).
struct RequestEnvelope {
  common::json::Value id;  // echoed verbatim; may be Null when absent
  RequestType type = RequestType::Ping;
  std::string tenant = "anon";
  /// <= 0: no per-request deadline (process default applies).
  double deadline_ms = 0.0;
  /// Idempotency key; empty = none (every request executes independently).
  std::string idem;
  common::json::Value params;  // object or Null
};

/// Parses and validates one request payload. Returns nullopt and fills
/// `error` (human-readable) when the payload is not a valid request; the
/// caller answers with a bad_request reply instead of disconnecting.
/// When the malformed payload still carried an "id", it is copied to
/// `id_out` so the error reply can correlate.
std::optional<RequestEnvelope> parse_request(const std::string& payload,
                                             std::string* error,
                                             common::json::Value* id_out);

/// Reply builders. `id` is echoed verbatim.
common::json::Value make_ok_reply(const common::json::Value& id,
                                  common::json::Value result);
common::json::Value make_degraded_reply(const common::json::Value& id,
                                        common::json::Value result,
                                        const std::string& why);
common::json::Value make_error_reply(const common::json::Value& id,
                                     const std::string& kind,
                                     const std::string& message);

}  // namespace qc::serve
