// The qapprox server: approximation-as-a-service over a local socket.
//
// A long-lived daemon that accepts simulate/synthesize jobs over the
// length-prefixed JSON wire protocol (wire.hpp + protocol.hpp) on an AF_UNIX
// stream socket and multiplexes them onto one shared worker pool
// (scheduler.hpp), so every client amortizes one warm ExecutionEngine and
// one warm synthesis cache instead of cold-starting a process per figure.
//
// Structure: an accept thread spawns one reader and one writer thread per
// connection; readers decode frames and either answer inline (ping/stats/
// shutdown — cheap, never queued behind synthesis) or submit a job. Replies
// stream back in completion order through a bounded per-connection write
// queue (QAPPROX_WRITE_BUDGET; a reader slower than its replies is
// disconnected rather than buffered without limit); a connection object
// stays alive (via shared_ptr) until its last queued job has replied.
//
// Crash durability (DESIGN.md §14): with QAPPROX_JOURNAL_DIR set,
// idempotency-keyed jobs are journaled ACCEPTED/STARTED/DONE over a
// CRC-framed WAL — DONE fsync'd before the reply is sent — so a SIGKILL
// mid-load loses no acked work: restart replays the journal, rebuilds the
// reply-replay cache, and re-enqueues incomplete jobs. Retries carrying the
// same "idem" key replay the cached reply or attach to the in-flight
// execution instead of re-executing. A watchdog (QAPPROX_WATCHDOG_MS)
// cancels overdue jobs and, when a job stops polling entirely, reaps its
// slot with a structured "reaped" reply and a replacement worker.
//
// Lifecycle: start() recovers the journal, warm-starts the synthesis cache
// from QAPPROX_SYNTH_CACHE_DIR (when set), re-enqueues recovered jobs,
// binds, and returns; wait() blocks until a shutdown request (wire or
// signal handler calling request_shutdown()); stop() closes the listener,
// stops the watchdog, drains the scheduler (every accepted job runs, under
// a cancelled token — exactly one reply per request, never a leak), flushes
// and joins the writers, unblocks and joins the readers, compacts the
// journal, and snapshots the synthesis cache back to disk.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/json.hpp"
#include "obs/trace.hpp"
#include "serve/journal.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"
#include "serve/tail.hpp"
#include "serve/watchdog.hpp"
#include "serve/wire.hpp"

namespace qc::serve {

struct ServerOptions {
  /// AF_UNIX socket path (kept short: sun_path is ~108 bytes).
  std::string socket_path = "/tmp/qapprox.sock";
  SchedulerOptions scheduler;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Synthesis-cache snapshot directory ("" = no persistence). Defaults to
  /// QAPPROX_SYNTH_CACHE_DIR via from_env().
  std::string synth_cache_dir;
  /// Tail-sample capture directory ("" = tail sampling off). When set, the
  /// server force-enables tracing with bounded per-thread rings and writes
  /// the slowest / degraded / errored jobs' traces here (QAPPROX_TRACE_DIR).
  std::string trace_dir;
  /// Slowest jobs captured per rolling window (QAPPROX_TAIL_K).
  std::size_t tail_top_k = 3;
  /// > 0: a background thread snapshots the metrics registry every period —
  /// JSON to the QAPPROX_METRICS path and Prometheus text next to it
  /// (`<path>.prom`), both via atomic rename (QAPPROX_METRICS_PERIOD_MS).
  double metrics_period_ms = 0.0;
  /// Span of one rolling-histogram window for the per-job SLO metrics
  /// (QAPPROX_METRICS_WINDOW_MS). Geometry is fixed at first use.
  double metrics_window_ms = 1000.0;
  /// Job-journal directory ("" = crash durability off). When set, idem-keyed
  /// jobs are journaled (see journal.hpp) and restart re-enqueues incomplete
  /// work (QAPPROX_JOURNAL_DIR).
  std::string journal_dir;
  /// Reply-replay cache entries (QAPPROX_REPLAY_CACHE). Retries of keys past
  /// the cap re-execute, so size chaos/retry horizons under it.
  std::size_t replay_cache_cap = 4096;
  /// Per-connection write-queue byte budget (QAPPROX_WRITE_BUDGET). A reader
  /// slower than its replies accumulate is disconnected at the budget
  /// instead of growing the queue without bound.
  std::size_t write_budget_bytes = 8u << 20;
  /// Hung-job watchdog (QAPPROX_WATCHDOG_MS / QAPPROX_WATCHDOG_GRACE).
  WatchdogOptions watchdog;

  /// Reads QAPPROX_SERVE_SOCKET / _WORKERS / _QUEUE_CAP /
  /// QAPPROX_SYNTH_CACHE_DIR / QAPPROX_TRACE_DIR / QAPPROX_TAIL_K /
  /// QAPPROX_METRICS_PERIOD_MS / QAPPROX_METRICS_WINDOW_MS /
  /// QAPPROX_JOURNAL_DIR / QAPPROX_REPLAY_CACHE / QAPPROX_WRITE_BUDGET /
  /// QAPPROX_WATCHDOG_MS / QAPPROX_WATCHDOG_GRACE (malformed numbers warn
  /// and keep defaults).
  static ServerOptions from_env();
};

class QapproxServer {
 public:
  explicit QapproxServer(ServerOptions options = ServerOptions::from_env());
  ~QapproxServer();

  QapproxServer(const QapproxServer&) = delete;
  QapproxServer& operator=(const QapproxServer&) = delete;

  /// Warm-starts the synthesis cache, binds, listens, starts accepting.
  /// Throws common::Error when the socket cannot be bound.
  void start();

  /// Blocks until request_shutdown() (wire "shutdown" request, signal
  /// handler, or another thread).
  void wait();

  /// Wakes wait(). Does not tear anything down by itself. Async-signal
  /// unsafe parts avoided: just a flag + condition variable.
  void request_shutdown();

  /// Full teardown; see file header for ordering. Idempotent.
  void stop();

  bool running() const { return running_.load(); }
  const ServerOptions& options() const { return options_; }

  /// The stats-request payload (exposed for tests and the daemon's exit
  /// summary): request counters, scheduler depths, engine cache snapshot,
  /// synthesis cache totals, metrics registry, build info, fault spec.
  common::json::Value build_stats() const;

  /// The metrics-request payload: the live registry as a JSON tree
  /// (format == "json") or as Prometheus text exposition wrapped in
  /// {"content_type", "body"} (format == "prometheus").
  common::json::Value build_metrics(const std::string& format) const;

  /// Tail-sampler counters (tests / exit summary).
  TailSamplerStats tail_stats() const { return tail_.stats(); }

  /// Journal / replay / watchdog / write-queue counters (tests and the
  /// stats payload's "durability" section).
  struct DurabilityStats {
    std::uint64_t replayed = 0;        // replies served from the replay cache
    std::uint64_t attached = 0;        // retries merged into in-flight jobs
    std::uint64_t recovered_jobs = 0;  // re-enqueued from the journal
    std::uint64_t reaped = 0;          // watchdog gave the slot up
    std::uint64_t duplicate_exec = 0;  // MUST stay 0: the chaos-gate counter
    std::uint64_t slow_disconnects = 0;
  };
  DurabilityStats durability_stats() const;
  WatchdogStats watchdog_stats() const;
  JournalStats journal_stats() const;

 private:
  struct ConnState;
  struct Waiter {
    std::shared_ptr<ConnState> conn;  // null for journal-recovered jobs
    common::json::Value request_id;
  };

  void accept_loop();
  void handle_connection(std::shared_ptr<ConnState> conn);
  void handle_frame(const std::shared_ptr<ConnState>& conn,
                    const std::string& payload);
  void dispatch_job(const std::shared_ptr<ConnState>& conn,
                    RequestEnvelope env, bool recovered = false);
  void send_reply(const std::shared_ptr<ConnState>& conn,
                  const common::json::Value& reply);
  void writer_loop(std::shared_ptr<ConnState> conn);
  /// Pops `key`'s waiter list and sends each its (id-patched) copy of
  /// `reply`, closing the per-connection pending-job accounting.
  void deliver_keyed_reply(const std::string& key,
                           const common::json::Value& reply);
  void reap_job(const std::shared_ptr<JobTicket>& ticket);
  void replay_recovered_jobs();
  void exporter_loop();
  void write_metric_snapshots() const;
  /// Records one finished job into the rolling SLO instruments
  /// (serve.job.{latency,queue_wait,exec}_ns plus per-kind / per-tenant).
  void record_job_metrics(const char* kind, const std::string& tenant,
                          std::uint64_t latency_ns, std::uint64_t queue_wait_ns,
                          std::uint64_t exec_ns);

  ServerOptions options_;
  JobScheduler scheduler_;
  TailSampler tail_;
  ReplayCache replay_;
  std::unique_ptr<JobJournal> journal_;    // created (and recovered) at start()
  std::unique_ptr<Watchdog> watchdog_;     // created at start()
  std::string boot_id_;                    // exec-id prefix, unique per boot
  std::atomic<std::uint64_t> exec_seq_{0};
  std::atomic<std::uint64_t> ticket_seq_{0};
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::thread exporter_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  // In-flight idempotency keys -> every connection waiting on the result.
  // The first waiter is the request that started the execution; later ones
  // are retries that attached instead of re-executing.
  std::mutex inflight_mu_;
  std::unordered_map<std::string, std::vector<Waiter>> inflight_;

  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;

  std::mutex exporter_mu_;
  std::condition_variable exporter_cv_;
  bool exporter_stop_ = false;

  std::mutex conns_mu_;
  std::vector<std::thread> readers_;
  std::vector<std::thread> writers_;  // joined before readers at stop()
  std::list<std::weak_ptr<ConnState>> conns_;

  std::chrono::steady_clock::time_point started_at_;

  // Lifetime request counters (stats payload).
  struct Counters {
    std::atomic<std::uint64_t> connections{0};
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> ping{0};
    std::atomic<std::uint64_t> simulate{0};
    std::atomic<std::uint64_t> synthesize{0};
    std::atomic<std::uint64_t> stats{0};
    std::atomic<std::uint64_t> metrics{0};
    std::atomic<std::uint64_t> shutdown{0};
    std::atomic<std::uint64_t> bad_requests{0};
    std::atomic<std::uint64_t> oversized_frames{0};
    std::atomic<std::uint64_t> overloaded{0};
    std::atomic<std::uint64_t> replies{0};
    std::atomic<std::uint64_t> write_failures{0};
    std::atomic<std::uint64_t> job_errors{0};
    std::atomic<std::uint64_t> replayed{0};
    std::atomic<std::uint64_t> attached{0};
    std::atomic<std::uint64_t> recovered_jobs{0};
    std::atomic<std::uint64_t> reaped{0};
    std::atomic<std::uint64_t> duplicate_exec{0};
    std::atomic<std::uint64_t> slow_disconnects{0};
  };
  mutable Counters counters_;
  std::uint64_t warm_loaded_ = 0;  // cache entries loaded at start()
};

}  // namespace qc::serve
