// Tail sampling: keep full traces for the jobs worth debugging, drop the rest.
//
// Tracing every job in a long-lived server is cheap to *record* (bounded
// per-thread rings, see obs/trace.hpp) but exporting every trace would be an
// unbounded disk write. The interesting traces are a tiny biased sample: the
// slowest few jobs per time window (the p99 the SLO dashboard points at) and
// anything that finished degraded or as an error. The TailSampler watches
// every completed job and extracts exactly those:
//
//  * observe(trace_id, latency, ...) buckets completions into fixed wall
//    windows and keeps the top-K latencies of the current window; when the
//    window closes (first observation of the next window) the survivors are
//    captured. Degraded/error jobs skip the contest and capture immediately.
//  * A capture is chrome_trace_json_for_trace(trace_id) — the connected
//    admission/queue/exec/reply span tree — atomically written to
//    `<dir>/trace_<seq>_<reason>_<trace id>.json`.
//  * The directory is a bounded ring: beyond `max_files` the oldest capture
//    is unlinked, so a week-long soak cannot fill the disk.
//
// Captures race against the per-thread rings overwriting old events, so the
// server sizes the rings (set_trace_capacity) to comfortably cover one
// window of traffic. flush() captures the current window's survivors early
// (graceful shutdown).
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace qc::serve {

struct TailSamplerOptions {
  /// Capture directory; "" disables the sampler entirely (observe() is a
  /// no-op beyond one atomic load).
  std::string dir;
  /// Slowest jobs kept per window.
  std::size_t top_k = 3;
  /// Window span. Matches the rolling-histogram default so "slowest this
  /// window" and "p99 this window" talk about the same interval.
  std::uint64_t window_ns = 1'000'000'000ull;
  /// On-disk ring size; the oldest capture is unlinked beyond this.
  std::size_t max_files = 64;
};

struct TailSamplerStats {
  std::uint64_t observed = 0;   // completions seen
  std::uint64_t captured = 0;   // trace files written
  std::uint64_t evicted = 0;    // old captures unlinked by the file ring
  std::uint64_t write_failures = 0;
};

class TailSampler {
 public:
  explicit TailSampler(TailSamplerOptions options = {});

  bool enabled() const { return !options_.dir.empty(); }
  const TailSamplerOptions& options() const { return options_; }

  /// Reports one completed job. `reason` tags the capture filename
  /// ("slow" for top-K winners; pass "degraded"/"error" with
  /// `always_capture` for jobs that must not be lost). Thread-safe; capture
  /// IO happens outside the bookkeeping lock.
  void observe(std::uint64_t trace_id, std::uint64_t latency_ns,
               std::uint64_t now_ns, const std::string& reason,
               bool always_capture);

  /// Captures the current window's survivors immediately (shutdown path).
  void flush();

  TailSamplerStats stats() const;

 private:
  struct Candidate {
    std::uint64_t trace_id = 0;
    std::uint64_t latency_ns = 0;
  };

  /// Closes the window `epoch` belongs to if it is newer than the current
  /// one; returns the evicted survivors. Caller holds mu_.
  std::vector<Candidate> rotate_locked(std::uint64_t epoch);
  void capture(std::uint64_t trace_id, std::uint64_t latency_ns,
               const std::string& reason);

  TailSamplerOptions options_;
  mutable std::mutex mu_;
  std::uint64_t window_epoch_ = 0;
  std::vector<Candidate> window_best_;   // current window's top-K, unsorted
  std::deque<std::string> files_;        // capture paths, oldest first
  std::uint64_t seq_ = 0;
  TailSamplerStats stats_;
};

}  // namespace qc::serve
