#include "serve/client.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <utility>

#include "common/backoff.hpp"
#include "common/error.hpp"

namespace qc::serve {

namespace json = common::json;

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), decoder_(std::move(other.decoder_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    decoder_ = std::move(other.decoder_);
  }
  return *this;
}

Client Client::connect(const std::string& socket_path,
                       std::size_t max_frame_bytes) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  QC_CHECK_MSG(socket_path.size() < sizeof(addr.sun_path),
               "socket path too long: " + socket_path);
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0)
    throw common::Error(std::string("client: socket() failed: ") +
                        std::strerror(errno));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    throw common::Error("client: connect(" + socket_path +
                        ") failed: " + std::strerror(err));
  }
  Client client;
  client.fd_ = fd;
  client.decoder_ = FrameDecoder(max_frame_bytes);
  return client;
}

Client Client::connect_with_retry(const std::string& socket_path,
                                  double budget_ms,
                                  std::size_t max_frame_bytes) {
  using Clock = std::chrono::steady_clock;
  const auto give_up_at =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(budget_ms));
  common::Backoff backoff;
  std::string last_error;
  while (true) {
    try {
      return connect(socket_path, max_frame_bytes);
    } catch (const common::Error& e) {
      last_error = e.what();
    }
    const double delay_ms = backoff.next_ms();
    if (Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double, std::milli>(delay_ms)) >=
        give_up_at)
      throw common::Error("client: connect_with_retry(" + socket_path +
                          ") gave up after " + std::to_string(budget_ms) +
                          " ms: " + last_error);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay_ms));
  }
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::send(const json::Value& request) {
  QC_CHECK_MSG(connected(), "client not connected");
  write_frame_fd(fd_, request.dump());
}

void Client::send_raw(const std::string& bytes) {
  QC_CHECK_MSG(connected(), "client not connected");
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw common::Error(std::string("client: send failed: ") +
                          std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::optional<json::Value> Client::recv() {
  QC_CHECK_MSG(connected(), "client not connected");
  while (true) {
    if (auto frame = decoder_.next()) {
      if (frame->oversized)
        throw common::Error("client: reply frame exceeds the frame limit");
      return json::parse(frame->payload);
    }
    if (decoder_.poisoned()) return std::nullopt;
    if (!read_into_decoder(fd_, decoder_)) return std::nullopt;
  }
}

json::Value Client::call(const json::Value& request) {
  send(request);
  std::optional<json::Value> reply = recv();
  QC_CHECK_MSG(reply.has_value(), "client: connection closed before reply");
  return std::move(*reply);
}

}  // namespace qc::serve
