#include "serve/tail.hpp"

#include <cstdio>
#include <filesystem>
#include <utility>

#include "common/error.hpp"
#include "common/io.hpp"
#include "obs/obs.hpp"

namespace qc::serve {

namespace fs = std::filesystem;

TailSampler::TailSampler(TailSamplerOptions options)
    : options_(std::move(options)) {
  if (options_.top_k == 0) options_.top_k = 1;
  if (options_.window_ns == 0) options_.window_ns = 1'000'000'000ull;
  if (options_.max_files == 0) options_.max_files = 1;
  if (!enabled()) return;
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) {
    QC_LOG_WARN("serve", "tail sampler: cannot create %s (%s); disabled",
                options_.dir.c_str(), ec.message().c_str());
    options_.dir.clear();
  }
}

void TailSampler::observe(std::uint64_t trace_id, std::uint64_t latency_ns,
                          std::uint64_t now_ns, const std::string& reason,
                          bool always_capture) {
  if (!enabled() || trace_id == 0) return;
  std::vector<Candidate> closed;
  bool capture_now = always_capture;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.observed;
    closed = rotate_locked(now_ns / options_.window_ns);
    if (!capture_now) {
      // Contest for a top-K slot; evict the fastest current winner.
      if (window_best_.size() < options_.top_k) {
        window_best_.push_back({trace_id, latency_ns});
      } else {
        std::size_t fastest = 0;
        for (std::size_t i = 1; i < window_best_.size(); ++i)
          if (window_best_[i].latency_ns < window_best_[fastest].latency_ns)
            fastest = i;
        if (window_best_[fastest].latency_ns < latency_ns)
          window_best_[fastest] = {trace_id, latency_ns};
      }
    }
  }
  if (capture_now) capture(trace_id, latency_ns, reason);
  for (const Candidate& c : closed) capture(c.trace_id, c.latency_ns, "slow");
}

std::vector<TailSampler::Candidate> TailSampler::rotate_locked(
    std::uint64_t epoch) {
  if (epoch <= window_epoch_) return {};
  std::vector<Candidate> closed = std::move(window_best_);
  window_best_.clear();
  window_epoch_ = epoch;
  return closed;
}

void TailSampler::capture(std::uint64_t trace_id, std::uint64_t latency_ns,
                          const std::string& reason) {
  const std::string json = obs::chrome_trace_json_for_trace(trace_id);
  std::string evict_path;
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    char name[128];
    std::snprintf(name, sizeof(name), "trace_%06llu_%s_%016llx.json",
                  static_cast<unsigned long long>(seq_++), reason.c_str(),
                  static_cast<unsigned long long>(trace_id));
    path = options_.dir + "/" + name;
    files_.push_back(path);
    if (files_.size() > options_.max_files) {
      evict_path = std::move(files_.front());
      files_.pop_front();
      ++stats_.evicted;
    }
  }
  try {
    common::atomic_write_file(path, json);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.captured;
    QC_LOG_DEBUG("serve", "tail capture %s (%.2f ms)", path.c_str(),
                 static_cast<double>(latency_ns) / 1e6);
  } catch (const common::Error& e) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.write_failures;
    QC_LOG_WARN("serve", "tail capture failed: %s", e.what());
  }
  if (!evict_path.empty()) {
    std::error_code ec;
    fs::remove(evict_path, ec);  // best-effort; a vanished file is fine
  }
}

void TailSampler::flush() {
  if (!enabled()) return;
  std::vector<Candidate> closed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed = std::move(window_best_);
    window_best_.clear();
  }
  for (const Candidate& c : closed) capture(c.trace_id, c.latency_ns, "slow");
}

TailSamplerStats TailSampler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace qc::serve
