// Watchdog: detects hung/runaway jobs and reaps their scheduler slots.
//
// A cooperative deadline only works when the job polls it; a job wedged
// inside non-polling code (a pathological kernel loop, a stuck syscall, an
// injected hang) holds its worker forever and the server quietly loses a
// slot. The watchdog closes that gap with a two-strike scan:
//
//   strike 1 — a job is overdue (elapsed > budget × grace): cancel its
//              per-job token (linked to, but distinct from, the scheduler's
//              stop token) and record its progress beacon. A merely-slow job
//              observes the cancel at its next StopPoller poll and winds
//              down on its own.
//   strike 2 — next scan, still running AND the beacon has not moved: the
//              job is not polling and will never see the cancel. Reap it:
//              invoke the reap callback (the server sends a structured
//              "reaped" timeout reply and journals it) and ask the scheduler
//              for a surplus worker so the wedged slot is replaced.
//
// Reaping answers the client; it cannot unwind the stuck thread. The thread
// keeps burning its core until it returns or the process exits — the reply
// it eventually produces is suppressed by the ticket's replied flag, and the
// surplus worker retires to keep the pool at its configured size.
//
// Jobs with no deadline at all are exempt (budget 0 = they may legitimately
// run forever); the scan period and grace come from QAPPROX_WATCHDOG_MS and
// QAPPROX_WATCHDOG_GRACE.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/deadline.hpp"
#include "common/json.hpp"

namespace qc::serve {

struct WatchdogOptions {
  /// Scan period; <= 0 disables the watchdog (QAPPROX_WATCHDOG_MS).
  double scan_period_ms = 250.0;
  /// A job is overdue once elapsed > budget × grace (QAPPROX_WATCHDOG_GRACE).
  double grace = 4.0;
};

/// One running job's registration. The server owns a shared_ptr for the
/// duration of the job body; the watchdog holds another for its scan table.
struct JobTicket {
  std::uint64_t id = 0;
  std::string kind;    // "simulate" | "synthesize"
  std::string tenant;
  std::string key;     // journal key ("" = not journaled)
  /// Reply-delivery key into the server's in-flight waiter table. Equals
  /// `key` for idempotent jobs; keyless jobs get a synthetic per-ticket key
  /// so the reaper can still find their waiter.
  std::string wait_key;
  common::json::Value request_id;  // echoed in the reaped reply
  /// Deadline budget in ms; 0 = unbounded (never reaped).
  double budget_ms = 0.0;
  std::chrono::steady_clock::time_point started_at;
  /// Cancelled at strike 1; the job's Deadline carries this token.
  common::CancelToken cancel;
  /// Bumped by every Deadline::expired() poll (Deadline::with_progress).
  std::shared_ptr<std::atomic<std::uint64_t>> beacon =
      std::make_shared<std::atomic<std::uint64_t>>(0);
  /// Exactly-one-reply arbitration between the worker and the reaper: both
  /// exchange(true) and only the winner sends.
  std::shared_ptr<std::atomic<bool>> replied =
      std::make_shared<std::atomic<bool>>(false);

  // Watchdog-internal strike state (only the scan thread touches these).
  bool struck = false;
  std::uint64_t beacon_at_strike = 0;
};

struct WatchdogStats {
  bool enabled = false;
  std::uint64_t scans = 0;
  std::uint64_t strikes = 0;   // cancels issued (strike 1)
  std::uint64_t reaped = 0;    // slots given up on (strike 2)
  std::size_t watched = 0;     // currently registered jobs
};

class Watchdog {
 public:
  /// Called (from the scan thread) for each reaped job. The callback must
  /// not block on the reaped job itself.
  using ReapFn = std::function<void(const std::shared_ptr<JobTicket>&)>;

  Watchdog(const WatchdogOptions& options, ReapFn on_reap);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  bool enabled() const { return options_.scan_period_ms > 0.0; }

  /// Registers a job that is now running. No-op (returns the ticket
  /// untracked) when disabled.
  void watch(const std::shared_ptr<JobTicket>& ticket);

  /// Unregisters a finished job (normal completion or cooperative wind-down).
  void release(const std::shared_ptr<JobTicket>& ticket);

  /// Stops the scan thread. Idempotent; called before the scheduler joins so
  /// the reap callback never races teardown.
  void stop();

  WatchdogStats stats() const;

  /// Reads QAPPROX_WATCHDOG_MS / QAPPROX_WATCHDOG_GRACE.
  static WatchdogOptions options_from_env();

 private:
  void scan_loop();
  void scan_once();

  WatchdogOptions options_;
  ReapFn on_reap_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::unordered_map<std::uint64_t, std::shared_ptr<JobTicket>> watched_;
  WatchdogStats stats_;
  std::thread scanner_;
};

}  // namespace qc::serve
