#include "serve/protocol.hpp"

#include "common/error.hpp"

namespace qc::serve {

namespace json = common::json;

const char* request_type_name(RequestType type) {
  switch (type) {
    case RequestType::Ping: return "ping";
    case RequestType::Simulate: return "simulate";
    case RequestType::Synthesize: return "synthesize";
    case RequestType::Stats: return "stats";
    case RequestType::Metrics: return "metrics";
    case RequestType::Shutdown: return "shutdown";
  }
  return "unknown";
}

namespace {

bool type_from_name(const std::string& name, RequestType* out) {
  if (name == "ping") { *out = RequestType::Ping; return true; }
  if (name == "simulate") { *out = RequestType::Simulate; return true; }
  if (name == "synthesize") { *out = RequestType::Synthesize; return true; }
  if (name == "stats") { *out = RequestType::Stats; return true; }
  if (name == "metrics") { *out = RequestType::Metrics; return true; }
  if (name == "shutdown") { *out = RequestType::Shutdown; return true; }
  return false;
}

}  // namespace

std::optional<RequestEnvelope> parse_request(const std::string& payload,
                                             std::string* error,
                                             json::Value* id_out) {
  json::Value doc;
  std::string parse_error;
  if (!json::try_parse(payload, &doc, &parse_error)) {
    if (error) *error = "malformed JSON: " + parse_error;
    return std::nullopt;
  }
  if (!doc.is_object()) {
    if (error) *error = "request must be a JSON object";
    return std::nullopt;
  }
  // Salvage the id first so even a bad request gets a correlated reply.
  if (id_out) {
    if (const json::Value* id = doc.find("id")) *id_out = *id;
  }
  RequestEnvelope env;
  if (const json::Value* id = doc.find("id")) env.id = *id;
  const json::Value* type = doc.find("type");
  if (type == nullptr || !type->is_string()) {
    if (error) *error = "request missing string field \"type\"";
    return std::nullopt;
  }
  if (!type_from_name(type->as_string(), &env.type)) {
    if (error) *error = "unknown request type \"" + type->as_string() + "\"";
    return std::nullopt;
  }
  try {
    env.tenant = doc.get_string("tenant", "anon");
    env.deadline_ms = doc.get_number("deadline_ms", 0.0);
    env.idem = doc.get_string("idem", "");
  } catch (const common::Error& e) {
    if (error) *error = e.what();
    return std::nullopt;
  }
  if (env.tenant.empty()) env.tenant = "anon";
  if (const json::Value* params = doc.find("params")) {
    if (!params->is_object() && !params->is_null()) {
      if (error) *error = "\"params\" must be an object";
      return std::nullopt;
    }
    env.params = *params;
  }
  return env;
}

json::Value make_ok_reply(const json::Value& id, json::Value result) {
  json::Value reply = json::Value::object();
  reply.set("id", id);
  reply.set("status", "ok");
  reply.set("result", std::move(result));
  return reply;
}

json::Value make_degraded_reply(const json::Value& id, json::Value result,
                                const std::string& why) {
  json::Value reply = json::Value::object();
  reply.set("id", id);
  reply.set("status", "degraded");
  reply.set("degraded", why);
  reply.set("result", std::move(result));
  return reply;
}

json::Value make_error_reply(const json::Value& id, const std::string& kind,
                             const std::string& message) {
  json::Value reply = json::Value::object();
  reply.set("id", id);
  reply.set("status", "error");
  json::Value err = json::Value::object();
  err.set("kind", kind);
  err.set("message", message);
  reply.set("error", std::move(err));
  return reply;
}

}  // namespace qc::serve
