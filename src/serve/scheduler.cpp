#include "serve/scheduler.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "obs/rolling.hpp"

namespace qc::serve {

JobScheduler::JobScheduler(const SchedulerOptions& options) : options_(options) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.queue_cap == 0) options_.queue_cap = 1;
  if (options_.per_tenant_cap == 0) options_.per_tenant_cap = 1;
  workers_.reserve(options_.workers);
  live_workers_ = options_.workers;
  for (std::size_t i = 0; i < options_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

JobScheduler::~JobScheduler() { stop(); }

bool JobScheduler::submit(const std::string& tenant, Job job,
                          std::string* reject_reason) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      if (reject_reason) *reject_reason = "server is shutting down";
      ++lifetime_.rejected;
      return false;
    }
    if (queued_ >= options_.queue_cap) {
      if (reject_reason)
        *reject_reason = "queue full (" + std::to_string(options_.queue_cap) +
                         " jobs); retry later";
      ++lifetime_.rejected;
      obs::counter("serve.scheduler.rejected").add(1);
      return false;
    }
    std::deque<Job>& q = queues_[tenant];
    if (q.size() >= options_.per_tenant_cap) {
      if (reject_reason)
        *reject_reason = "tenant queue full (" +
                         std::to_string(options_.per_tenant_cap) +
                         " jobs); retry later";
      ++lifetime_.rejected;
      obs::counter("serve.scheduler.rejected").add(1);
      return false;
    }
    if (q.empty()) rr_tenants_.push_back(tenant);  // tenant becomes active
    q.push_back(std::move(job));
    ++queued_;
    ++lifetime_.submitted;
    lifetime_.peak_queued = std::max(lifetime_.peak_queued, queued_);
    obs::gauge("serve.queue.depth").set(static_cast<double>(queued_));
    // Depth sampled at every submit: the rolling percentiles answer "how deep
    // was the queue over the last few seconds", which the point-in-time gauge
    // (usually 0 between bursts) cannot.
    obs::rolling_histogram("serve.queue.depth.window").record(queued_);
  }
  cv_.notify_one();
  return true;
}

bool JobScheduler::pop_next(Job* out) {
  // Caller holds mu_. Round-robin across active tenants: take the head of
  // the cursor's queue, then advance; a tenant whose queue empties leaves
  // the rotation until its next submit.
  if (rr_tenants_.empty()) return false;
  if (rr_cursor_ >= rr_tenants_.size()) rr_cursor_ = 0;
  const std::string tenant = rr_tenants_[rr_cursor_];
  auto it = queues_.find(tenant);
  *out = std::move(it->second.front());
  it->second.pop_front();
  --queued_;
  if (it->second.empty()) {
    queues_.erase(it);
    rr_tenants_.erase(rr_tenants_.begin() +
                      static_cast<std::ptrdiff_t>(rr_cursor_));
    // cursor now points at the next tenant already; wrap handled on entry
  } else {
    ++rr_cursor_;
  }
  obs::gauge("serve.queue.depth").set(static_cast<double>(queued_));
  return true;
}

void JobScheduler::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_.wait(lock, [this] { return queued_ > 0 || stopping_; });
    Job job;
    if (!pop_next(&job)) {
      if (stopping_) {
        --live_workers_;
        return;  // drained and stopping: exit
      }
      continue;
    }
    ++running_;
    lock.unlock();
    job(cancel_);  // bodies are noexcept by contract (server wraps them)
    lock.lock();
    --running_;
    ++lifetime_.completed;
    obs::counter("serve.scheduler.completed").add(1);
    if (queued_ == 0 && running_ == 0) idle_cv_.notify_all();
    // Surplus retirement: while a reaped job's thread is presumed wedged it
    // is excluded from the usable count, so its replacement stays. Once the
    // wedged thread returns (note_wedged_worker_returned), the pool really
    // is oversize and the next finisher — usually that very thread — exits.
    if (!stopping_ && live_workers_ - wedged_ > options_.workers) {
      --live_workers_;
      return;
    }
  }
}

void JobScheduler::spawn_surplus_worker() {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) return;
  ++live_workers_;
  ++wedged_;
  ++lifetime_.surplus_spawned;
  obs::counter("serve.scheduler.surplus_spawned").add(1);
  workers_.emplace_back([this] { worker_loop(); });
}

void JobScheduler::note_wedged_worker_returned() {
  std::lock_guard<std::mutex> lock(mu_);
  if (wedged_ > 0) --wedged_;
}

void JobScheduler::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  cancel_.request_cancel();
  cv_.notify_all();
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
  workers_.clear();
}

void JobScheduler::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queued_ == 0 && running_ == 0; });
}

SchedulerStats JobScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SchedulerStats s = lifetime_;
  s.queued = queued_;
  s.running = running_;
  s.tenants = queues_.size();
  s.live_workers = live_workers_;
  return s;
}

}  // namespace qc::serve
