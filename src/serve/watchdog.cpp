#include "serve/watchdog.hpp"

#include <cstdlib>
#include <vector>

#include "obs/obs.hpp"

namespace qc::serve {

namespace {

double env_double_or(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  if (end == raw || *end != '\0' || v < 0.0) {
    QC_LOG_WARN("serve", "ignoring malformed %s='%s'", name, raw);
    return fallback;
  }
  return v;
}

}  // namespace

WatchdogOptions Watchdog::options_from_env() {
  WatchdogOptions opts;
  opts.scan_period_ms = env_double_or("QAPPROX_WATCHDOG_MS", opts.scan_period_ms);
  opts.grace = env_double_or("QAPPROX_WATCHDOG_GRACE", opts.grace);
  if (opts.grace < 1.0) opts.grace = 1.0;  // reaping before the budget is up
                                           // would race healthy jobs
  return opts;
}

Watchdog::Watchdog(const WatchdogOptions& options, ReapFn on_reap)
    : options_(options), on_reap_(std::move(on_reap)) {
  stats_.enabled = enabled();
  if (enabled()) scanner_ = std::thread([this] { scan_loop(); });
}

Watchdog::~Watchdog() { stop(); }

void Watchdog::watch(const std::shared_ptr<JobTicket>& ticket) {
  if (!enabled() || ticket == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  watched_[ticket->id] = ticket;
  stats_.watched = watched_.size();
}

void Watchdog::release(const std::shared_ptr<JobTicket>& ticket) {
  if (!enabled() || ticket == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  watched_.erase(ticket->id);
  stats_.watched = watched_.size();
}

void Watchdog::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (scanner_.joinable()) scanner_.join();
}

void Watchdog::scan_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock,
                 std::chrono::duration<double, std::milli>(
                     options_.scan_period_ms),
                 [this] { return stop_; });
    if (stop_) return;
    lock.unlock();
    scan_once();
    lock.lock();
  }
}

void Watchdog::scan_once() {
  const auto now = std::chrono::steady_clock::now();
  std::vector<std::shared_ptr<JobTicket>> to_reap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.scans;
    for (auto it = watched_.begin(); it != watched_.end();) {
      const std::shared_ptr<JobTicket>& ticket = it->second;
      if (ticket->budget_ms <= 0.0) {  // unbounded: exempt
        ++it;
        continue;
      }
      const double elapsed_ms =
          std::chrono::duration<double, std::milli>(now - ticket->started_at)
              .count();
      if (elapsed_ms <= ticket->budget_ms * options_.grace) {
        ++it;
        continue;
      }
      if (!ticket->struck) {
        // Strike 1: cancel and note where the beacon stands. A polling job
        // sees the cancel and winds down before the next scan.
        ticket->struck = true;
        ticket->beacon_at_strike =
            ticket->beacon->load(std::memory_order_relaxed);
        ticket->cancel.request_cancel();
        ++stats_.strikes;
        obs::counter("serve.watchdog.strikes").add(1);
        ++it;
        continue;
      }
      const std::uint64_t beacon_now =
          ticket->beacon->load(std::memory_order_relaxed);
      if (beacon_now != ticket->beacon_at_strike) {
        // Still polling — cooperatively winding down, give it another scan.
        ticket->beacon_at_strike = beacon_now;
        ++it;
        continue;
      }
      // Strike 2: cancelled a full scan period ago and not one deadline poll
      // since — the job cannot see the cancel. Give its slot up.
      to_reap.push_back(ticket);
      it = watched_.erase(it);
      ++stats_.reaped;
      obs::counter("serve.watchdog.reaped").add(1);
    }
    stats_.watched = watched_.size();
  }
  for (const std::shared_ptr<JobTicket>& ticket : to_reap)
    if (on_reap_) on_reap_(ticket);
}

WatchdogStats Watchdog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace qc::serve
