// Write-ahead job journal + bounded reply-replay cache for the serve layer.
//
// The exactly-once-reply contract across a crash (DESIGN.md §14) rests on
// three record types appended to a common::WalWriter-backed log:
//
//   {"t":"accepted","key":K,"request":{...}}   durable before admission acks
//   {"t":"started","key":K,"exec":E}           staged (observability only)
//   {"t":"done","key":K,"reply":{...}}         durable BEFORE the reply is
//                                              sent — the load-bearing order
//
// DONE-before-send is what makes replay safe: a crash after the fsync but
// before the client read the reply is recovered by replaying the cached
// reply; a crash before the fsync means the client never saw a reply, so
// re-executing is not a duplicate. The forbidden window — reply delivered,
// DONE lost — never exists.
//
// Recovery (open()): replay the log to its longest valid prefix, rebuild the
// replay cache from DONE records, collect ACCEPTED-without-DONE keys as
// incomplete jobs for the server to re-enqueue, then compact the log so it
// does not grow across restarts. Compaction keeps the most recent DONE
// records (up to the replay-cache cap) plus every incomplete ACCEPTED; a
// clean drain therefore leaves a DONE-only journal, which the CI chaos gate
// asserts by walking the frames with python's struct + zlib.
//
// Only idempotency-keyed jobs are journaled: a keyless job cannot be matched
// to a retry, so replaying it after a crash would execute work nobody can
// claim. Keys are tenant-scoped by the server before they reach this layer.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "common/wal.hpp"

namespace qc::serve {

/// Bounded LRU map from idempotency key to the reply that key produced.
/// Lives next to the journal because recovery rebuilds it from DONE records;
/// it also runs journal-less (in-memory only) when QAPPROX_JOURNAL_DIR is
/// unset. Eviction is capacity-only: an evicted key's retry re-executes, so
/// the cap trades memory against the retry horizon (default 4096 — size
/// chaos loads under it).
class ReplayCache {
 public:
  explicit ReplayCache(std::size_t cap) : cap_(cap == 0 ? 1 : cap) {}

  /// The cached reply for `key`, bumping its recency; nullopt on miss.
  std::optional<common::json::Value> get(const std::string& key);

  /// Inserts/overwrites `key`, evicting the least-recently-used entry over
  /// capacity.
  void put(const std::string& key, common::json::Value reply);

  bool contains(const std::string& key) const;

  std::size_t size() const;
  std::size_t cap() const { return cap_; }
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;

 private:
  using Entry = std::pair<std::string, common::json::Value>;

  std::size_t cap_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

/// An ACCEPTED-without-DONE job found at recovery: the server re-enqueues it.
struct RecoveredJob {
  std::string key;
  common::json::Value request;  // the original request envelope object
};

struct JournalStats {
  bool enabled = false;
  std::string path;
  std::uint64_t accepted = 0;   // records appended this boot
  std::uint64_t started = 0;
  std::uint64_t done = 0;
  std::uint64_t appended_bytes = 0;
  std::uint64_t sync_calls = 0;
  std::uint64_t recovered_replies = 0;     // DONE records replayed at open
  std::uint64_t recovered_incomplete = 0;  // jobs re-enqueued at open
  std::uint64_t torn_bytes = 0;            // tail discarded at open
  std::uint64_t compactions = 0;
  double recovery_ms = 0.0;  // wall time of the open() replay+compact
};

/// The journal. Disabled (all record_* are no-ops) when constructed with an
/// empty directory. One instance per server; thread-safe.
class JobJournal {
 public:
  /// `dir` == "": journaling off. Otherwise opens (creating) `dir/jobs.wal`,
  /// recovers, fills `replay` with recovered replies, and compacts. Throws
  /// common::Error when the directory cannot be used.
  JobJournal(const std::string& dir, ReplayCache* replay);
  ~JobJournal();

  JobJournal(const JobJournal&) = delete;
  JobJournal& operator=(const JobJournal&) = delete;

  bool enabled() const { return writer_ != nullptr; }

  /// Durable: returns only once the ACCEPTED record is on disk.
  void record_accepted(const std::string& key,
                       const common::json::Value& request);

  /// Staged (group-committed with the next durable append): STARTED is
  /// observability — duplicate-execution forensics — not correctness.
  void record_started(const std::string& key, const std::string& exec_id);

  /// Durable: MUST complete before the reply is sent (see file header).
  void record_done(const std::string& key, const common::json::Value& reply);

  /// Staged: closes an ACCEPTED key whose job the scheduler rejected — the
  /// client got an "overloaded" error and nothing executed. Recovery treats
  /// it like DONE minus the replay-cache entry; losing the record to a crash
  /// merely re-enqueues a job that never ran (one execution, zero duplicated
  /// side effects), so group commit is enough.
  void record_rejected(const std::string& key);

  /// Jobs to re-enqueue, in journal order. Filled by the constructor; the
  /// server consumes (moves from) it once at start().
  std::vector<RecoveredJob>& recovered() { return recovered_; }

  /// Rewrites the log to DONE records (newest `replay_cap` per the cache
  /// handed to the constructor) plus still-incomplete ACCEPTED records.
  /// Called at clean shutdown after the scheduler drained; safe to call with
  /// appends quiesced only.
  void compact();

  JournalStats stats() const;

 private:
  void append_durable(const std::string& payload);
  void append_staged(const std::string& payload);

  std::string path_;
  std::unique_ptr<common::WalWriter> writer_;
  ReplayCache* replay_ = nullptr;

  mutable std::mutex mu_;  // guards writer_ swap during compact + counters
  // Keys accepted (journaled) but not yet done, with their request payloads —
  // what a compaction must preserve.
  std::unordered_map<std::string, std::string> incomplete_;
  std::vector<RecoveredJob> recovered_;
  JournalStats stats_;
};

}  // namespace qc::serve
