#include "serve/journal.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sys/stat.h>
#include <sys/types.h>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace qc::serve {

namespace json = common::json;

namespace {

void make_dirs(const std::string& dir) {
  std::string prefix;
  std::size_t pos = 0;
  while (pos <= dir.size()) {
    const std::size_t slash = dir.find('/', pos);
    prefix = slash == std::string::npos ? dir : dir.substr(0, slash);
    if (!prefix.empty() && ::mkdir(prefix.c_str(), 0755) != 0 &&
        errno != EEXIST)
      throw common::Error("journal: mkdir(" + prefix +
                          ") failed: " + std::strerror(errno));
    if (slash == std::string::npos) break;
    pos = slash + 1;
  }
}

std::string record_json(const char* type, const std::string& key,
                        const char* field, const json::Value& value) {
  json::Value rec = json::Value::object();
  rec.set("t", type);
  rec.set("key", key);
  rec.set(field, value);
  return rec.dump();
}

}  // namespace

// ---------------------------------------------------------------- ReplayCache

std::optional<json::Value> ReplayCache::get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return it->second->second;
}

void ReplayCache::put(const std::string& key, json::Value reply) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(reply);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(reply));
  index_[key] = lru_.begin();
  if (lru_.size() > cap_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

bool ReplayCache::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.count(key) != 0;
}

std::size_t ReplayCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::uint64_t ReplayCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t ReplayCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::uint64_t ReplayCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

// ----------------------------------------------------------------- JobJournal

JobJournal::JobJournal(const std::string& dir, ReplayCache* replay)
    : replay_(replay) {
  if (dir.empty()) return;  // journaling off: record_* are no-ops
  make_dirs(dir);
  path_ = dir + "/jobs.wal";

  const auto t0 = std::chrono::steady_clock::now();
  const common::WalReadResult log = common::read_wal(path_);
  stats_.torn_bytes = log.torn_bytes;

  // Replay to a key -> last-state map. Order matters twice: DONE replies go
  // to the replay cache oldest-first so LRU keeps the newest, and incomplete
  // jobs re-enqueue in acceptance order.
  std::vector<std::string> done_order;           // keys, oldest first
  std::unordered_map<std::string, json::Value> done_replies;
  std::vector<std::string> accept_order;
  std::unordered_map<std::string, json::Value> accept_requests;
  for (const std::string& payload : log.records) {
    json::Value rec;
    std::string parse_error;
    if (!json::try_parse(payload, &rec, &parse_error) || !rec.is_object())
      continue;  // CRC-valid but unparseable: skip, never fail recovery
    const std::string type = rec.get_string("t", "");
    const std::string key = rec.get_string("key", "");
    if (key.empty()) continue;
    if (type == "accepted") {
      const json::Value* request = rec.find("request");
      if (request == nullptr) continue;
      if (accept_requests.count(key) == 0) accept_order.push_back(key);
      accept_requests[key] = *request;
    } else if (type == "done") {
      const json::Value* reply = rec.find("reply");
      if (reply == nullptr) continue;
      if (done_replies.count(key) == 0) done_order.push_back(key);
      done_replies[key] = *reply;
    } else if (type == "rejected") {
      // The scheduler bounced this key after it was accepted: nothing ran,
      // nothing to re-enqueue. A later re-accept re-opens it.
      accept_requests.erase(key);
    }
    // "started" records are forensic only; recovery has no use for them.
  }

  for (const std::string& key : done_order) {
    if (replay_ != nullptr) replay_->put(key, done_replies[key]);
    ++stats_.recovered_replies;
  }
  for (const std::string& key : accept_order) {
    if (done_replies.count(key) != 0) continue;  // finished before the crash
    if (accept_requests.count(key) == 0) continue;  // rejected, never re-opened
    if (incomplete_.count(key) != 0) continue;  // reject->re-accept: one entry
    RecoveredJob job;
    job.key = key;
    job.request = accept_requests[key];
    incomplete_[key] = job.request.dump();
    recovered_.push_back(std::move(job));
    ++stats_.recovered_incomplete;
  }

  // Compact before the writer opens: recovery is the one moment the log has
  // no concurrent appenders, and rewriting here bounds growth across crash
  // loops (the chaos soak restarts this path five-plus times).
  std::vector<std::string> keep;
  const std::size_t done_cap = replay_ != nullptr ? replay_->cap() : 4096;
  const std::size_t first_done =
      done_order.size() > done_cap ? done_order.size() - done_cap : 0;
  for (std::size_t i = first_done; i < done_order.size(); ++i)
    keep.push_back(record_json("done", done_order[i], "reply",
                               done_replies[done_order[i]]));
  for (const RecoveredJob& job : recovered_)
    keep.push_back(record_json("accepted", job.key, "request", job.request));
  if (log.existed) {
    common::rewrite_wal(path_, keep);
    ++stats_.compactions;
  }

  writer_ = std::make_unique<common::WalWriter>(path_);
  stats_.enabled = true;
  stats_.path = path_;
  stats_.recovery_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  obs::gauge("serve.journal.recovery_ms").set(stats_.recovery_ms);
  obs::counter("serve.journal.recovered_replies")
      .add(stats_.recovered_replies);
  obs::counter("serve.journal.recovered_incomplete")
      .add(stats_.recovered_incomplete);
  if (stats_.torn_bytes > 0)
    obs::counter("serve.journal.torn_bytes").add(stats_.torn_bytes);
}

JobJournal::~JobJournal() = default;

void JobJournal::append_durable(const std::string& payload) {
  common::WalWriter* writer;
  {
    std::lock_guard<std::mutex> lock(mu_);
    writer = writer_.get();
  }
  if (writer == nullptr) return;
  // fsync outside mu_: WalWriter group-commits internally, so concurrent
  // reader/worker threads amortize one flush instead of queueing on ours.
  writer->append_durable(payload);
}

void JobJournal::append_staged(const std::string& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (writer_) writer_->append(payload);
}

void JobJournal::record_accepted(const std::string& key,
                                 const json::Value& request) {
  if (!enabled()) return;
  const std::string payload = record_json("accepted", key, "request", request);
  {
    std::lock_guard<std::mutex> lock(mu_);
    incomplete_[key] = payload;
    ++stats_.accepted;
  }
  append_durable(payload);
}

void JobJournal::record_started(const std::string& key,
                                const std::string& exec_id) {
  if (!enabled()) return;
  json::Value rec = json::Value::object();
  rec.set("t", "started");
  rec.set("key", key);
  rec.set("exec", exec_id);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.started;
  }
  append_staged(rec.dump());
}

void JobJournal::record_done(const std::string& key,
                             const json::Value& reply) {
  if (!enabled()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    incomplete_.erase(key);
    ++stats_.done;
  }
  append_durable(record_json("done", key, "reply", reply));
}

void JobJournal::record_rejected(const std::string& key) {
  if (!enabled()) return;
  json::Value rec = json::Value::object();
  rec.set("t", "rejected");
  rec.set("key", key);
  {
    std::lock_guard<std::mutex> lock(mu_);
    incomplete_.erase(key);
  }
  append_staged(rec.dump());
}

void JobJournal::compact() {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  // Appends are quiesced (scheduler drained) by contract, so closing the
  // writer, rewriting, and reopening cannot lose records.
  writer_.reset();
  std::vector<std::string> keep;
  if (replay_ != nullptr) {
    // Everything worth replaying after a restart is exactly the cache's
    // current contents; walk it via the journal's own bookkeeping instead of
    // exposing iteration: re-read the compacted-at-open log plus this boot's
    // DONE records. Simpler and equivalent: re-scan the file we just wrote.
    const common::WalReadResult log = common::read_wal(path_);
    std::vector<std::string> order;
    std::unordered_map<std::string, std::string> latest;
    for (const std::string& payload : log.records) {
      json::Value rec;
      std::string parse_error;
      if (!json::try_parse(payload, &rec, &parse_error) || !rec.is_object())
        continue;
      if (rec.get_string("t", "") != "done") continue;
      const std::string key = rec.get_string("key", "");
      if (key.empty()) continue;
      if (latest.count(key) == 0) order.push_back(key);
      latest[key] = payload;
    }
    const std::size_t cap = replay_->cap();
    const std::size_t first = order.size() > cap ? order.size() - cap : 0;
    for (std::size_t i = first; i < order.size(); ++i)
      keep.push_back(latest[order[i]]);
  }
  for (const auto& [key, payload] : incomplete_) keep.push_back(payload);
  common::rewrite_wal(path_, keep);
  ++stats_.compactions;
  writer_ = std::make_unique<common::WalWriter>(path_);
}

JournalStats JobJournal::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  JournalStats s = stats_;
  if (writer_) {
    s.appended_bytes = writer_->appended_bytes();
    s.sync_calls = writer_->sync_calls();
  }
  return s;
}

}  // namespace qc::serve
