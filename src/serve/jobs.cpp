#include "serve/jobs.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <numeric>
#include <thread>
#include <vector>

#include "algos/grover.hpp"
#include "algos/mct.hpp"
#include "algos/tfim.hpp"
#include "approx/tfim_study.hpp"
#include "approx/workflow.hpp"
#include "common/driver.hpp"
#include "common/error.hpp"
#include "ir/qasm.hpp"
#include "metrics/distribution.hpp"
#include "sim/observables.hpp"
#include "synth/qsearch.hpp"

namespace qc::serve {

namespace json = common::json;
namespace driver = common::driver;

namespace {

int checked_qubits(const json::Value& params, int fallback, int max_qubits) {
  const std::int64_t q = params.get_int("qubits", fallback);
  QC_CHECK_MSG(q >= 1 && q <= max_qubits,
               "\"qubits\" out of range [1, " + std::to_string(max_qubits) + "]");
  return static_cast<int>(q);
}

std::string outcome_bits(std::size_t index, int num_qubits) {
  std::string bits(static_cast<std::size_t>(num_qubits), '0');
  for (int q = 0; q < num_qubits; ++q)
    if ((index >> q) & 1u) bits[static_cast<std::size_t>(num_qubits - 1 - q)] = '1';
  return bits;
}

/// Test hooks for the durability machinery (both capped so a stray request
/// cannot park a worker for long):
///
///   "sleep_ms" — cooperative stall: sleeps in short chunks, polling the
///   deadline each chunk (which also bumps the watchdog's progress beacon),
///   and winds down early when cancelled. Exercises strike-1 cancellation
///   and chaos-harness kill windows without ever being reaped.
///
///   "hang_ms" — uncooperative stall: sleeps through the whole budget while
///   ignoring the deadline entirely, exactly like a job wedged in
///   non-polling code. The watchdog's strike 2 reaps it; the bounded
///   duration keeps stop() joinable in tests.
void run_stall_hooks(const json::Value& params,
                     const common::Deadline& deadline) {
  const std::int64_t sleep_ms = params.get_int("sleep_ms", 0);
  QC_CHECK_MSG(sleep_ms >= 0 && sleep_ms <= 60000,
               "\"sleep_ms\" out of range [0, 60000]");
  if (sleep_ms > 0) {
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(sleep_ms);
    while (std::chrono::steady_clock::now() < until) {
      if (deadline.expired()) break;  // cancelled or out of time: wind down
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  const std::int64_t hang_ms = params.get_int("hang_ms", 0);
  QC_CHECK_MSG(hang_ms >= 0 && hang_ms <= 60000,
               "\"hang_ms\" out of range [0, 60000]");
  if (hang_ms > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(hang_ms));
}

}  // namespace

Workload build_workload(const json::Value& params) {
  Workload w;
  w.name = params.get_string("workload", "tfim");
  if (w.name == "tfim") {
    algos::TfimModel model;
    model.num_qubits = checked_qubits(params, 3, 6);
    const std::int64_t steps = params.get_int("steps", 5);
    QC_CHECK_MSG(steps >= 1 && steps <= 64, "\"steps\" out of range [1, 64]");
    model.num_steps = std::max(model.num_steps, static_cast<int>(steps));
    w.circuit = model.circuit_up_to(static_cast<int>(steps));
    w.metric = "magnetization";
  } else if (w.name == "grover") {
    const int qubits = checked_qubits(params, 3, 6);
    const std::uint64_t all_ones = (1ull << qubits) - 1;
    const std::int64_t marked = params.get_int("marked", static_cast<std::int64_t>(all_ones));
    QC_CHECK_MSG(marked >= 0 && static_cast<std::uint64_t>(marked) <= all_ones,
                 "\"marked\" outside the outcome space");
    const std::int64_t iterations = params.get_int("iterations", 0);
    QC_CHECK_MSG(iterations >= 0 && iterations <= 64, "\"iterations\" out of range");
    w.marked = static_cast<std::uint64_t>(marked);
    w.circuit = algos::grover_circuit(qubits, w.marked, static_cast<int>(iterations));
    w.metric = "success_probability";
  } else if (w.name == "mct") {
    const int qubits = checked_qubits(params, 3, 6);
    QC_CHECK_MSG(qubits >= 2, "mct needs at least 2 qubits");
    w.circuit = algos::mct_battery_circuit(qubits);
    w.metric = "js_to_ideal";
  } else if (w.name == "qasm") {
    const json::Value* text = params.find("qasm");
    QC_CHECK_MSG(text != nullptr && text->is_string(),
                 "workload \"qasm\" needs a string field \"qasm\"");
    w.circuit = ir::from_qasm(text->as_string());
    QC_CHECK_MSG(w.circuit.num_qubits() <= 12,
                 "inline qasm capped at 12 qubits per job");
  } else {
    throw common::ContractError("unknown workload \"" + w.name +
                                "\" (tfim | grover | mct | qasm)");
  }
  return w;
}

JobOutcome run_simulate_job(const json::Value& params,
                            const common::Deadline& deadline,
                            const obs::TraceContext& trace) {
  driver::init_runtime();
  run_stall_hooks(params, deadline);
  const Workload workload = build_workload(params);

  exec::RunRequest req;
  req.trace_parent = trace;
  req.circuit = workload.circuit;
  req.config = driver::execution_config(params.get_string("device", "santiago"),
                                        params.get_string("mode", "simulator"));
  const std::int64_t shots = params.get_int(
      "shots", static_cast<std::int64_t>(req.config.shots));
  QC_CHECK_MSG(shots >= 1 && shots <= (1 << 20), "\"shots\" out of range");
  req.config.shots = static_cast<std::size_t>(shots);
  req.config.seed = static_cast<std::uint64_t>(
      params.get_int("seed", static_cast<std::int64_t>(driver::default_seed(11))));
  req.deadline = deadline;
  // Single-element batches would all draw fault stream 0 (the batch index);
  // key the stream to the job instead so QAPPROX_FAULTS probabilities mean
  // the same thing under the server as under a batch driver.
  req.fault_stream = req.circuit.fingerprint() ^ req.config.seed;

  // A single-element batch rather than run(): batch slots capture injected
  // worker faults as Failed results instead of letting them unwind the
  // caller, which is exactly the containment a multi-tenant server needs.
  const exec::RunResult run = driver::engine().run_batch({req}).at(0);
  if (run.status == exec::RunStatus::Failed)
    throw common::SimulationError(run.record.error.empty() ? "run failed"
                                                           : run.record.error);

  const int n = workload.circuit.num_qubits();
  json::Value result = json::Value::object();
  result.set("workload", workload.name);
  result.set("qubits", n);
  result.set("engine", run.record.engine);
  result.set("shots", run.record.shots);
  result.set("completed_shots", run.record.completed_shots);
  result.set("transpiled_cx", run.record.transpiled_cx);
  result.set("transpiled_depth", run.record.transpiled_depth);
  result.set("wall_ms", run.record.wall_ms);
  result.set("timed_out", run.record.timed_out);

  if (workload.metric == "magnetization") {
    result.set("magnetization", sim::average_z_magnetization(run.probabilities));
  } else if (workload.metric == "success_probability") {
    result.set("success_probability",
               metrics::success_probability(run.probabilities,
                                            static_cast<std::size_t>(workload.marked)));
  } else if (workload.metric == "js_to_ideal") {
    result.set("js_to_ideal",
               metrics::js_distance(run.probabilities,
                                    algos::mct_battery_ideal_distribution(n)));
  }

  // Top-k outcomes by probability (bitstrings in circuit wire order).
  const std::int64_t top_k_arg = params.get_int("top_k", 8);
  QC_CHECK_MSG(top_k_arg >= 0 && top_k_arg <= 64, "\"top_k\" out of range");
  std::vector<std::size_t> order(run.probabilities.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  const std::size_t top_k =
      std::min(order.size(), static_cast<std::size_t>(top_k_arg));
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(top_k),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      return run.probabilities[a] > run.probabilities[b];
                    });
  json::Value outcomes = json::Value::array();
  for (std::size_t i = 0; i < top_k; ++i) {
    json::Value entry = json::Value::object();
    entry.set("outcome", outcome_bits(order[i], n));
    entry.set("p", run.probabilities[order[i]]);
    outcomes.push_back(std::move(entry));
  }
  result.set("top_outcomes", std::move(outcomes));

  JobOutcome out;
  out.result = std::move(result);
  if (run.status == exec::RunStatus::TimedOut) {
    out.degraded = true;
    out.why = "deadline expired; distribution is a flagged partial result";
  }
  return out;
}

JobOutcome run_synthesize_job(const json::Value& params,
                              const common::Deadline& deadline,
                              const obs::TraceContext& trace) {
  driver::init_runtime();
  run_stall_hooks(params, deadline);
  const std::string preset = params.get_string("preset", "tfim");
  const bool fast = params.get_bool("fast", true);

  ir::QuantumCircuit reference;
  approx::GeneratorConfig gen;
  if (preset == "tfim") {
    json::Value shape = params;  // workload fields share the simulate schema
    shape.set("workload", "tfim");
    reference = build_workload(shape).circuit;
    gen = approx::tfim_generator_preset(reference.num_qubits());
    if (fast) {
      gen.qsearch.max_nodes = 8;
      gen.qfast.max_blocks = 3;
      gen.reducer.variants_per_size = 1;
      gen.max_circuits = 24;
    }
  } else if (preset == "grover") {
    json::Value shape = params;
    shape.set("workload", "grover");
    reference = build_workload(shape).circuit;
    gen = approx::grover_generator_preset(fast);
  } else if (preset == "toffoli") {
    const int qubits = checked_qubits(params, 3, 6);
    reference = algos::mct_reference_circuit(qubits);
    gen = approx::toffoli_generator_preset(qubits, fast);
  } else if (preset == "partition") {
    // Partitioned resynthesis never computes the whole-circuit unitary, so
    // it serves widths the other presets cannot (TFIM up to 10 qubits here
    // vs build_workload's 6, or inline qasm up to the 12-qubit cap).
    if (params.find("qasm") != nullptr) {
      json::Value shape = params;
      shape.set("workload", "qasm");
      reference = build_workload(shape).circuit;
    } else {
      algos::TfimModel model;
      model.num_qubits = checked_qubits(params, 3, 10);
      const std::int64_t steps = params.get_int("steps", 10);
      QC_CHECK_MSG(steps >= 1 && steps <= 64, "\"steps\" out of range [1, 64]");
      model.num_steps = std::max(model.num_steps, static_cast<int>(steps));
      reference = model.circuit_up_to(static_cast<int>(steps));
    }
    gen.use_qsearch = false;
    gen.use_partition = true;
    const std::int64_t block_qubits = params.get_int("block_qubits", 3);
    QC_CHECK_MSG(block_qubits >= 2 && block_qubits <= 4,
                 "\"block_qubits\" out of range [2, 4]");
    gen.partition.block_qubits = static_cast<int>(block_qubits);
    gen.partition.block_hs_budget =
        params.get_number("block_hs_budget", gen.partition.block_hs_budget);
    // total_hs_budget switches to the global allocator (noise-weighted when
    // the job names a device below).
    gen.partition.total_hs_budget = params.get_number("total_hs_budget", 0.0);
    gen.partition.qsearch.max_nodes = fast ? 10 : 24;
    gen.partition.qsearch.max_cnots = 4;
    gen.partition.qsearch.optimizer.max_iterations = 60;
    gen.hs_threshold = 1e9;  // per-block sums; selection happens per block
  } else {
    throw common::ContractError("unknown preset \"" + preset +
                                "\" (tfim | grover | toffoli | partition)");
  }

  gen.hs_threshold = params.get_number("hs_threshold", gen.hs_threshold);
  const std::int64_t max_circuits = params.get_int(
      "max_circuits", static_cast<std::int64_t>(gen.max_circuits));
  QC_CHECK_MSG(max_circuits >= 1 && max_circuits <= 1000,
               "\"max_circuits\" out of range [1, 1000]");
  gen.max_circuits = static_cast<std::size_t>(max_circuits);
  gen.deadline = deadline;

  const noise::CouplingMap line = noise::CouplingMap::line(reference.num_qubits());
  const noise::CouplingMap* coupling = &line;
  const std::string device_name = params.get_string("device", "");
  const noise::DeviceProperties* device = nullptr;
  if (!device_name.empty()) device = &driver::device(device_name);
  if (device != nullptr) coupling = &device->coupling;
  // The partition budget allocator weighs blocks by calibration noise when
  // the job names a device.
  if (gen.use_partition) gen.partition.device = device;

  approx::GenerationReport report;
  std::vector<synth::ApproxCircuit> circuits;
  {
    // The harvest is the job's whole execution phase; parenting it here puts
    // the synthesis wall time inside the served job's trace.
    obs::Span span("synth.generate", trace);
    circuits = approx::generate_from_reference(reference, gen, coupling, &report);
    if (span.active()) {
      span.arg("preset", preset);
      span.arg("circuits", circuits.size());
      span.arg("attempts", report.attempts);
    }
  }

  json::Value result = json::Value::object();
  result.set("preset", preset);
  result.set("qubits", reference.num_qubits());
  result.set("reference_cnots", reference.count(ir::GateKind::CX));
  result.set("num_circuits", circuits.size());

  json::Value cloud = json::Value::array();
  for (const synth::ApproxCircuit& c : circuits) {
    json::Value entry = json::Value::object();
    entry.set("cnots", c.cnot_count);
    entry.set("hs", c.hs_distance);
    entry.set("source", c.source);
    cloud.push_back(std::move(entry));
  }
  result.set("circuits", std::move(cloud));

  if (!circuits.empty()) {
    const auto best = std::min_element(
        circuits.begin(), circuits.end(),
        [](const synth::ApproxCircuit& a, const synth::ApproxCircuit& b) {
          return a.hs_distance < b.hs_distance;
        });
    json::Value best_json = json::Value::object();
    best_json.set("cnots", best->cnot_count);
    best_json.set("hs", best->hs_distance);
    best_json.set("source", best->source);
    if (params.get_bool("include_qasm", false))
      best_json.set("qasm", ir::to_qasm(best->circuit));
    result.set("best", std::move(best_json));
  }

  json::Value rep = json::Value::object();
  rep.set("attempts", report.attempts);
  rep.set("failures", report.failures);
  rep.set("retries", report.retries);
  rep.set("timed_out", report.timed_out);
  rep.set("fell_back", report.fell_back);
  rep.set("synth_cache_hits", report.synth_cache_hits);
  rep.set("synth_cache_misses", report.synth_cache_misses);
  if (gen.use_partition) {
    json::Value part = json::Value::object();
    part.set("blocks_total", report.partition_blocks);
    part.set("blocks_resynthesized", report.partition_blocks_resynthesized);
    part.set("unique_blocks", report.partition_unique_blocks);
    part.set("dedupe_hits", report.partition_dedupe_hits);
    part.set("block_failures", report.partition_block_failures);
    rep.set("partition", std::move(part));
  }
  result.set("report", std::move(rep));

  JobOutcome out;
  out.result = std::move(result);
  if (report.degraded()) {
    out.degraded = true;
    out.why = report.fell_back  ? "harvest fell back to the exact reference"
              : report.timed_out ? "deadline truncated the harvest"
              : report.failures > 0
                  ? "a synthesis tool failed and was retried/dropped"
                  : "some partition blocks failed and passed through unchanged";
  }
  return out;
}

}  // namespace qc::serve
