// Blocking client for the qapprox wire protocol.
//
// Small by design: connect to the server's AF_UNIX socket, send request
// objects, receive reply objects. call() is the one-shot convenience
// (send + wait for the reply matching this client's last id); the load
// generator drives send()/recv() directly to keep many requests in flight
// on one connection.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/json.hpp"
#include "serve/wire.hpp"

namespace qc::serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects to a server socket. Throws common::Error on failure.
  static Client connect(const std::string& socket_path,
                        std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

  /// Connects with exponential-backoff retries (jittered; see
  /// common/backoff.hpp) for up to `budget_ms`. Rides out a supervisor
  /// restart window: a refused/missing socket is retried, and the caller
  /// resends any unreplied requests under their original idempotency keys so
  /// the reconnect never double-executes work. Throws common::Error once the
  /// budget is exhausted.
  static Client connect_with_retry(
      const std::string& socket_path, double budget_ms = 10000.0,
      std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

  bool connected() const { return fd_ >= 0; }
  void close();

  /// Sends one request object (any JSON value; the server validates).
  void send(const common::json::Value& request);

  /// Sends a raw pre-framed payload (tests: garbage bytes, split frames).
  void send_raw(const std::string& bytes);

  /// Blocks for the next reply frame. Empty optional on EOF/poisoned stream.
  std::optional<common::json::Value> recv();

  /// send() + recv(): returns the next reply (in-order protocols only — do
  /// not mix with pipelined send()s).
  common::json::Value call(const common::json::Value& request);

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  FrameDecoder decoder_{kDefaultMaxFrameBytes};
};

}  // namespace qc::serve
