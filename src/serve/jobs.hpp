// Job builders: the reusable, request-describable core of the bench/example
// drivers.
//
// The one-shot drivers (bench_fig05_*, examples/*) and the server both need
// to answer "given a workload description, produce a circuit, run it, and
// summarize" — the drivers from CLI flags, the server from wire params.
// This module is that shared core: pure functions from a JSON params object
// to a JSON result object, built on common::driver for engine/device access.
// The server schedules these on its worker pool; a driver could call them
// inline.
//
// simulate params:
//   {"workload": "tfim" | "grover" | "mct" | "qasm",
//    "qubits": 3, "steps": 5,            // tfim
//    "marked": 7, "iterations": 0,       // grover (marked default: all ones)
//    "qasm": "OPENQASM 2.0; ...",        // workload "qasm" only
//    "device": "santiago", "mode": "simulator" | "hardware" | "ideal",
//    "shots": 2048, "seed": 11, "top_k": 8}
//
// synthesize params:
//   {"preset": "tfim" | "grover" | "toffoli",
//    "qubits": 3, "steps": 3,            // workload shape (as above)
//    "fast": true,                       // trimmed search budget
//    "hs_threshold": 0.5, "max_circuits": 16,
//    "device": "santiago",                 // coupling map for synthesis
//    "include_qasm": false}              // inline best circuit as QASM
//
// Each runner returns a JobOutcome the server maps onto the reply status:
// Ok -> "ok", Degraded -> "degraded" (result still usable; `why` explains),
// and failures are reported by throwing the library taxonomy
// (ContractError for bad params, etc.), which the server maps to structured
// error replies.
#pragma once

#include <string>

#include "common/deadline.hpp"
#include "common/json.hpp"
#include "ir/circuit.hpp"
#include "obs/trace.hpp"

namespace qc::serve {

/// A named workload instance: the circuit plus how to condense its output.
struct Workload {
  std::string name;                // "tfim" | "grover" | "mct" | "qasm"
  ir::QuantumCircuit circuit;
  /// Metric to attach to simulate results: "" (none), "magnetization",
  /// "success_probability", "js_to_ideal".
  std::string metric;
  std::uint64_t marked = 0;        // grover: the searched-for outcome
};

/// Builds a workload from simulate/synthesize params. Throws ContractError
/// on unknown workloads or invalid shapes (the server turns that into a
/// "contract" error reply).
Workload build_workload(const common::json::Value& params);

/// How a job finished: Ok maps to an "ok" reply, Degraded to "degraded"
/// with `why` carried in the reply envelope.
struct JobOutcome {
  common::json::Value result;
  bool degraded = false;
  std::string why;
};

/// Executes a simulate job under `deadline`. The run itself never throws on
/// timeout — TimedOut results come back Degraded with a partial
/// distribution, Failed results throw SimulationError. A valid `trace`
/// context parents the engine's exec.run span tree under the server's
/// per-job trace (invalid: spans record unparented, exactly as before).
JobOutcome run_simulate_job(const common::json::Value& params,
                            const common::Deadline& deadline,
                            const obs::TraceContext& trace = {});

/// Executes a synthesize job (harvest + selection via
/// approx::generate_from_reference) under `deadline`. Tool failures and
/// fallbacks degrade the result instead of failing it (the GenerationReport
/// is embedded in the result). `trace` as in run_simulate_job.
JobOutcome run_synthesize_job(const common::json::Value& params,
                              const common::Deadline& deadline,
                              const obs::TraceContext& trace = {});

}  // namespace qc::serve
