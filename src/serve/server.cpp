#include "serve/server.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <set>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/deadline.hpp"

#include "common/driver.hpp"
#include "common/error.hpp"
#include "common/faults.hpp"
#include "common/io.hpp"
#include "linalg/kernels.hpp"
#include "obs/obs.hpp"
#include "obs/rolling.hpp"
#include "serve/jobs.hpp"
#include "synth/cache.hpp"
#include "synth/persist.hpp"

namespace qc::serve {

namespace json = common::json;
namespace driver = common::driver;

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0' || v == 0) {
    QC_LOG_WARN("serve", "ignoring malformed %s='%s'", name, raw);
    return fallback;
  }
  return static_cast<std::size_t>(v);
}

double env_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  if (end == raw || *end != '\0' || v < 0.0) {
    QC_LOG_WARN("serve", "ignoring malformed %s='%s'", name, raw);
    return fallback;
  }
  return v;
}

TailSamplerOptions tail_options(const ServerOptions& opts) {
  TailSamplerOptions t;
  t.dir = opts.trace_dir;
  t.top_k = opts.tail_top_k;
  t.window_ns = static_cast<std::uint64_t>(
      std::max(1.0, opts.metrics_window_ms) * 1e6);
  return t;
}

/// Metric-name-safe rendering of a caller-supplied label segment.
std::string sanitize_label(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw)
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' ||
            c == '_')
               ? c
               : '_';
  if (out.empty()) out = "anon";
  if (out.size() > 48) out.resize(48);
  return out;
}

/// Caps tenant-label cardinality: the first 32 distinct tenants get their own
/// rolling series, the rest fold into "other" — a hostile client choosing a
/// fresh tenant name per request must not mint unbounded instruments.
std::string tenant_label(const std::string& tenant) {
  static std::mutex mu;
  static std::set<std::string>* seen = new std::set<std::string>;
  const std::string s = sanitize_label(tenant);
  std::lock_guard<std::mutex> lock(mu);
  if (seen->count(s) != 0) return s;
  if (seen->size() >= 32) return "other";
  seen->insert(s);
  return s;
}

std::string trace_id_hex(std::uint64_t trace_id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(trace_id));
  return buf;
}

}  // namespace

ServerOptions ServerOptions::from_env() {
  ServerOptions opts;
  if (const char* sock = std::getenv("QAPPROX_SERVE_SOCKET"))
    if (*sock != '\0') opts.socket_path = sock;
  opts.scheduler.workers = env_size("QAPPROX_SERVE_WORKERS", opts.scheduler.workers);
  opts.scheduler.queue_cap =
      env_size("QAPPROX_SERVE_QUEUE_CAP", opts.scheduler.queue_cap);
  opts.scheduler.per_tenant_cap =
      std::min(opts.scheduler.per_tenant_cap, opts.scheduler.queue_cap);
  opts.synth_cache_dir = synth::synth_cache_dir_env();
  if (const char* dir = std::getenv("QAPPROX_TRACE_DIR"))
    if (*dir != '\0') opts.trace_dir = dir;
  opts.tail_top_k = env_size("QAPPROX_TAIL_K", opts.tail_top_k);
  opts.metrics_period_ms =
      env_double("QAPPROX_METRICS_PERIOD_MS", opts.metrics_period_ms);
  opts.metrics_window_ms =
      env_double("QAPPROX_METRICS_WINDOW_MS", opts.metrics_window_ms);
  if (opts.metrics_window_ms <= 0.0) opts.metrics_window_ms = 1000.0;
  if (const char* dir = std::getenv("QAPPROX_JOURNAL_DIR"))
    if (*dir != '\0') opts.journal_dir = dir;
  opts.replay_cache_cap =
      env_size("QAPPROX_REPLAY_CACHE", opts.replay_cache_cap);
  opts.write_budget_bytes =
      env_size("QAPPROX_WRITE_BUDGET", opts.write_budget_bytes);
  opts.watchdog = Watchdog::options_from_env();
  return opts;
}

/// Per-connection shared state. Reader thread, writer thread, and every
/// queued job hold a shared_ptr; the last owner's destructor closes the fd,
/// so replies for a disconnected client degrade to counted write failures,
/// never a write to a reused descriptor. Replies are staged in a bounded
/// byte-budget queue drained by the connection's writer thread; a client
/// slower than its replies accumulate is disconnected at the budget (slow-
/// loris back-pressure) instead of wedging a worker or growing the queue.
struct QapproxServer::ConnState {
  int fd = -1;
  std::atomic<bool> write_ok{true};

  std::mutex q_mu;
  std::condition_variable q_cv;
  std::deque<std::string> queue;  // encoded frames, FIFO
  std::size_t queued_bytes = 0;
  std::size_t pending_jobs = 0;   // dispatched jobs not yet replied
  bool reader_done = false;       // reader thread exited
  bool stop = false;              // server stopping: flush queue and exit

  ~ConnState() {
    if (fd >= 0) ::close(fd);
  }

  /// Pending-job accounting: a connection's writer thread stays alive until
  /// the reader is gone AND every dispatched job has enqueued its reply.
  /// Null-safe (journal-recovered jobs have no connection).
  static void job_begin(const std::shared_ptr<ConnState>& conn) {
    if (conn == nullptr) return;
    std::lock_guard<std::mutex> lock(conn->q_mu);
    ++conn->pending_jobs;
  }

  static void job_end(const std::shared_ptr<ConnState>& conn) {
    if (conn == nullptr) return;
    {
      std::lock_guard<std::mutex> lock(conn->q_mu);
      if (conn->pending_jobs > 0) --conn->pending_jobs;
    }
    conn->q_cv.notify_all();
  }
};

QapproxServer::QapproxServer(ServerOptions options)
    : options_(std::move(options)),
      scheduler_(options_.scheduler),
      tail_(tail_options(options_)),
      replay_(options_.replay_cache_cap) {
  // Exec ids are "<boot>-<seq>": unique per actual execution across
  // restarts, which is what lets the chaos harness prove a request id never
  // executed twice.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%012llx",
                static_cast<unsigned long long>(
                    (obs::now_ns() ^ (static_cast<std::uint64_t>(::getpid())
                                      << 32)) &
                    0xFFFFFFFFFFFFull));
  boot_id_ = buf;
}

QapproxServer::~QapproxServer() { stop(); }

void QapproxServer::start() {
  QC_CHECK_MSG(!running_.load(), "server already started");
  driver::init_runtime();
  started_at_ = std::chrono::steady_clock::now();

  if (tail_.enabled()) {
    // Tail sampling extracts traces from the live span buffers, so tracing
    // must be on even without QAPPROX_TRACE — with bounded per-thread rings:
    // a daemon traces forever in constant memory, and 32k events per thread
    // comfortably covers several sampling windows of job spans.
    obs::enable_tracing();
    obs::set_timing_enabled(true);
    obs::set_trace_capacity(32768);
    QC_LOG_INFO("serve", "tail sampling to %s (top %zu per %.0f ms window)",
                tail_.options().dir.c_str(), tail_.options().top_k,
                static_cast<double>(tail_.options().window_ns) / 1e6);
  }

  if (!options_.synth_cache_dir.empty()) {
    warm_loaded_ = synth::synth_cache_load(options_.synth_cache_dir);
    if (warm_loaded_ > 0)
      QC_LOG_INFO("serve", "warm-started %llu synthesis-cache entries from %s",
                  static_cast<unsigned long long>(warm_loaded_),
                  options_.synth_cache_dir.c_str());
  }

  // Crash durability: recover the journal (rebuilding the replay cache),
  // arm the watchdog, and re-enqueue accepted-but-unfinished jobs — all
  // before the listener exists, so no connection observes a half-recovered
  // server and no job runs unwatched.
  journal_ = std::make_unique<JobJournal>(options_.journal_dir, &replay_);
  if (journal_->enabled()) {
    const JournalStats js = journal_->stats();
    QC_LOG_INFO("serve",
                "journal %s: %llu replies replayed, %llu jobs to re-enqueue, "
                "%llu torn bytes discarded (%.1f ms)",
                js.path.c_str(),
                static_cast<unsigned long long>(js.recovered_replies),
                static_cast<unsigned long long>(js.recovered_incomplete),
                static_cast<unsigned long long>(js.torn_bytes), js.recovery_ms);
  }
  watchdog_ = std::make_unique<Watchdog>(
      options_.watchdog,
      [this](const std::shared_ptr<JobTicket>& ticket) { reap_job(ticket); });
  replay_recovered_jobs();

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  QC_CHECK_MSG(options_.socket_path.size() < sizeof(addr.sun_path),
               "socket path too long: " + options_.socket_path);
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw common::Error(std::string("serve: socket() failed: ") +
                        std::strerror(errno));
  ::unlink(options_.socket_path.c_str());  // stale socket from a dead server
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw common::Error("serve: bind(" + options_.socket_path +
                        ") failed: " + std::strerror(err));
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw common::Error(std::string("serve: listen() failed: ") +
                        std::strerror(err));
  }

  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  if (options_.metrics_period_ms > 0.0) {
    if (obs::metrics_export_path().empty()) {
      QC_LOG_WARN("serve",
                  "QAPPROX_METRICS_PERIOD_MS is set but QAPPROX_METRICS is "
                  "not; periodic snapshots have nowhere to go");
    } else {
      {
        std::lock_guard<std::mutex> lock(exporter_mu_);
        exporter_stop_ = false;
      }
      exporter_thread_ = std::thread([this] { exporter_loop(); });
      QC_LOG_INFO("serve", "metrics snapshots every %.0f ms -> %s{,.prom}",
                  options_.metrics_period_ms,
                  obs::metrics_export_path().c_str());
    }
  }
  QC_LOG_INFO("serve", "listening on %s (%zu workers, queue cap %zu)",
              options_.socket_path.c_str(), options_.scheduler.workers,
              options_.scheduler.queue_cap);
}

void QapproxServer::exporter_loop() {
  std::unique_lock<std::mutex> lock(exporter_mu_);
  while (!exporter_stop_) {
    exporter_cv_.wait_for(
        lock,
        std::chrono::duration<double, std::milli>(options_.metrics_period_ms),
        [this] { return exporter_stop_; });
    if (exporter_stop_) return;  // stop() writes the final snapshot itself
    lock.unlock();
    write_metric_snapshots();
    lock.lock();
  }
}

void QapproxServer::write_metric_snapshots() const {
  const std::string& path = obs::metrics_export_path();
  if (path.empty()) return;
  try {
    // Same shape as the at-exit QAPPROX_METRICS file, but atomic: a scraper
    // reading mid-rename sees the previous complete snapshot, never a
    // truncated one. The Prometheus exposition rides next to it.
    common::atomic_write_file(path, "{\"build\":" + obs::build_info_json() +
                                        ",\"metrics\":" + obs::metrics_json() +
                                        "}");
    common::atomic_write_file(path + ".prom", obs::metrics_prometheus());
  } catch (const common::Error& e) {
    QC_LOG_WARN("serve", "metrics snapshot failed: %s", e.what());
  }
}

void QapproxServer::accept_loop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (stop()) or fatal: accept loop ends
    }
    counters_.connections.fetch_add(1, std::memory_order_relaxed);
    // Bound every blocking send: a peer that stops reading mid-frame stalls
    // its writer thread for at most this long before counting as dead, so
    // stop() can always flush and join.
    timeval send_timeout{};
    send_timeout.tv_sec = 5;
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
                 sizeof(send_timeout));
    auto conn = std::make_shared<ConnState>();
    conn->fd = fd;
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (stopping_.load()) return;  // raced with stop(): conn closes via dtor
    conns_.push_back(conn);
    readers_.emplace_back([this, conn]() mutable {
      handle_connection(std::move(conn));
    });
    writers_.emplace_back([this, conn = std::move(conn)]() mutable {
      writer_loop(std::move(conn));
    });
  }
}

void QapproxServer::handle_connection(std::shared_ptr<ConnState> conn) {
  FrameDecoder decoder(options_.max_frame_bytes);
  while (!decoder.poisoned()) {
    while (auto frame = decoder.next()) {
      if (frame->oversized) {
        counters_.oversized_frames.fetch_add(1, std::memory_order_relaxed);
        send_reply(conn, make_error_reply(
                             json::Value(), "bad_request",
                             "frame of " + std::to_string(frame->declared_size) +
                                 " bytes exceeds the " +
                                 std::to_string(options_.max_frame_bytes) +
                                 "-byte limit"));
        continue;
      }
      handle_frame(conn, frame->payload);
    }
    if (decoder.poisoned()) break;
    if (!read_into_decoder(conn->fd, decoder)) break;  // EOF / error / stop()
  }
  {
    std::lock_guard<std::mutex> lock(conn->q_mu);
    conn->reader_done = true;
  }
  conn->q_cv.notify_all();  // writer may now exit once pending jobs drain
}

void QapproxServer::handle_frame(const std::shared_ptr<ConnState>& conn,
                                 const std::string& payload) {
  counters_.requests.fetch_add(1, std::memory_order_relaxed);
  std::string error;
  json::Value salvage_id;
  std::optional<RequestEnvelope> env = parse_request(payload, &error, &salvage_id);
  if (!env) {
    counters_.bad_requests.fetch_add(1, std::memory_order_relaxed);
    send_reply(conn, make_error_reply(salvage_id, "bad_request", error));
    return;
  }
  switch (env->type) {
    case RequestType::Ping: {
      counters_.ping.fetch_add(1, std::memory_order_relaxed);
      json::Value result = json::Value::object();
      result.set("pong", true);
      result.set("build", obs::build_info_summary());
      send_reply(conn, make_ok_reply(env->id, std::move(result)));
      return;
    }
    case RequestType::Stats: {
      counters_.stats.fetch_add(1, std::memory_order_relaxed);
      send_reply(conn, make_ok_reply(env->id, build_stats()));
      return;
    }
    case RequestType::Metrics: {
      counters_.metrics.fetch_add(1, std::memory_order_relaxed);
      std::string format = "json";
      if (env->params.is_object())
        format = env->params.get_string("format", "json");
      if (format != "json" && format != "prometheus") {
        send_reply(conn,
                   make_error_reply(env->id, "bad_request",
                                    "\"format\" must be \"json\" or "
                                    "\"prometheus\", got \"" + format + "\""));
        return;
      }
      send_reply(conn, make_ok_reply(env->id, build_metrics(format)));
      return;
    }
    case RequestType::Shutdown: {
      counters_.shutdown.fetch_add(1, std::memory_order_relaxed);
      json::Value result = json::Value::object();
      result.set("stopping", true);
      send_reply(conn, make_ok_reply(env->id, std::move(result)));
      request_shutdown();
      return;
    }
    case RequestType::Simulate:
    case RequestType::Synthesize:
      dispatch_job(conn, std::move(*env));
      return;
  }
}

void QapproxServer::dispatch_job(const std::shared_ptr<ConnState>& conn,
                                 RequestEnvelope env, bool recovered) {
  const bool is_simulate = env.type == RequestType::Simulate;
  (is_simulate ? counters_.simulate : counters_.synthesize)
      .fetch_add(1, std::memory_order_relaxed);
  const char* kind = is_simulate ? "simulate" : "synthesize";
  const std::string tenant = env.tenant;

  // Idempotency key, tenant-scoped so tenants cannot collide or probe each
  // other's replies. "" = keyless: not journaled, not deduplicated.
  const std::string key =
      env.idem.empty() ? std::string() : tenant + '\x1f' + env.idem;

  // Replay fast path: a completed key's retry gets the cached reply —
  // re-stamped with this request's id — never a second execution.
  if (!key.empty()) {
    if (std::optional<json::Value> cached = replay_.get(key)) {
      counters_.replayed.fetch_add(1, std::memory_order_relaxed);
      obs::counter("serve.replay.hits").add(1);
      json::Value reply = std::move(*cached);
      reply.set("id", env.id);
      reply.set("replayed", true);
      send_reply(conn, reply);
      return;
    }
  }

  auto ticket = std::make_shared<JobTicket>();
  ticket->id = ticket_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  ticket->kind = kind;
  ticket->tenant = tenant;
  ticket->key = key;
  ticket->request_id = env.id;
  ticket->wait_key = key.empty() ? std::string(1, '\0') + "#" +
                                       std::to_string(ticket->id)
                                 : key;
  if (env.deadline_ms > 0) {
    ticket->budget_ms = env.deadline_ms;
  } else {
    const double rem = common::Deadline::from_env().remaining_ms();
    if (std::isfinite(rem)) ticket->budget_ms = rem;
  }

  // Register the waiter. For keyed jobs this is also the dedup point: a
  // retry of an in-flight key attaches to the one execution instead of
  // re-executing, and the replay cache is re-checked under inflight_mu_ to
  // close the race with a concurrent completion (record_done puts the reply
  // into the cache *before* deliver_keyed_reply pops the waiter list under
  // this same mutex, so "not in flight" implies "visible in the cache").
  ConnState::job_begin(conn);
  bool primary = true;
  std::optional<json::Value> completed_racing;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto it = inflight_.find(ticket->wait_key);
    if (it != inflight_.end()) {
      it->second.push_back(Waiter{conn, env.id});
      primary = false;
    } else if (!key.empty() && (completed_racing = replay_.get(key))) {
      primary = false;
    } else {
      inflight_.emplace(ticket->wait_key,
                        std::vector<Waiter>{Waiter{conn, env.id}});
    }
  }
  if (completed_racing) {
    ConnState::job_end(conn);
    counters_.replayed.fetch_add(1, std::memory_order_relaxed);
    obs::counter("serve.replay.hits").add(1);
    json::Value reply = std::move(*completed_racing);
    reply.set("id", env.id);
    reply.set("replayed", true);
    send_reply(conn, reply);
    return;
  }
  if (!primary) {
    counters_.attached.fetch_add(1, std::memory_order_relaxed);
    obs::counter("serve.replay.attached").add(1);
    return;  // reply arrives via deliver_keyed_reply
  }

  // Journal ACCEPTED before submitting — durable, so a crash from here on
  // re-enqueues the job. The order matters: an ACCEPTED appended after the
  // job's own DONE would resurrect a completed job at recovery and execute
  // it a second time. Recovered jobs are already in the journal's
  // incomplete set and must not be re-accepted.
  if (!key.empty() && !recovered) {
    json::Value request = json::Value::object();
    request.set("type", kind);
    request.set("id", env.id);
    request.set("tenant", env.tenant);
    request.set("idem", env.idem);
    if (env.deadline_ms > 0) request.set("deadline_ms", env.deadline_ms);
    request.set("params", env.params);
    journal_->record_accepted(key, request);
  }

  // Admission: mint the job's trace root and stamp the clock here, on the
  // reader thread — queue wait starts now, not when a worker first sees the
  // job. The queued/exec phase identities are pre-minted children of the
  // root: both phases are committed after the fact (ManualSpan), and the
  // engine needs the exec identity as its parent *before* that span exists.
  // Ids are minted even with tracing off, so every reply can echo a trace id.
  const obs::TraceContext root = obs::mint_trace();
  const obs::TraceContext queued_ctx = obs::mint_child(root);
  const obs::TraceContext exec_ctx = obs::mint_child(root);
  const std::uint64_t admitted_ns = obs::now_ns();

  // The job owns the envelope; the reply goes out from the worker thread via
  // the waiter table (deliver_keyed_reply), streaming in completion order.
  auto body = [this, env = std::move(env), is_simulate, kind, tenant, key,
               ticket, root, queued_ctx, exec_ctx,
               admitted_ns](const common::CancelToken& cancel) {
    const std::uint64_t start_ns = obs::now_ns();
    // Exec ids are unique per actual execution, across restarts (boot-id
    // prefixed): the chaos harness proves exactly-once execution by checking
    // every reply for one request id carries the same exec id.
    const std::string exec_id =
        boot_id_ + "-" +
        std::to_string(exec_seq_.fetch_add(1, std::memory_order_relaxed) + 1);
    if (!key.empty()) journal_->record_started(key, exec_id);

    // Arm the watchdog: a per-job token linked to the scheduler's stop token
    // (strike 1 cancels this job alone), a progress beacon bumped by every
    // deadline poll (strike 2 requires the beacon frozen — the job is wedged
    // in non-polling code, not merely slow).
    ticket->cancel = common::CancelToken::linked(cancel);
    ticket->started_at = std::chrono::steady_clock::now();
    common::Deadline deadline = env.deadline_ms > 0
                                    ? common::Deadline::after_ms(env.deadline_ms)
                                    : common::Deadline::from_env();
    deadline = deadline.with_token(ticket->cancel)
                   .with_progress(ticket->beacon);
    watchdog_->watch(ticket);

    json::Value reply;
    const char* status = "ok";
    try {
      const JobOutcome outcome =
          is_simulate ? run_simulate_job(env.params, deadline, exec_ctx)
                      : run_synthesize_job(env.params, deadline, exec_ctx);
      status = outcome.degraded ? "degraded" : "ok";
      reply = outcome.degraded
                  ? make_degraded_reply(env.id, outcome.result, outcome.why)
                  : make_ok_reply(env.id, outcome.result);
    } catch (const common::TimeoutError& e) {
      status = "error";
      reply = make_error_reply(env.id, "timeout", e.what());
    } catch (const common::ContractError& e) {
      status = "error";
      reply = make_error_reply(env.id, "contract", e.what());
    } catch (const common::SynthesisError& e) {
      status = "error";
      reply = make_error_reply(env.id, "synthesis", e.what());
    } catch (const common::SimulationError& e) {
      status = "error";
      reply = make_error_reply(env.id, "simulation", e.what());
    } catch (const std::exception& e) {
      status = "error";
      reply = make_error_reply(env.id, "internal", e.what());
    }
    const std::uint64_t exec_end_ns = obs::now_ns();
    watchdog_->release(ticket);

    // Every job reply carries its server-side timeline, so clients can split
    // their measured latency into queue wait vs execution without a second
    // request. reply_ns covers reply *construction* (the frame write itself
    // is only measurable afterwards; its true cost goes to the
    // serve.job.reply span and the serve.job.reply_ns rolling histogram).
    json::Value timeline = json::Value::object();
    timeline.set("trace_id", trace_id_hex(root.trace_id));
    timeline.set("queued_ns", start_ns - admitted_ns);
    timeline.set("exec_ns", exec_end_ns - start_ns);
    const std::uint64_t reply_start_ns = obs::now_ns();
    timeline.set("reply_ns", reply_start_ns - exec_end_ns);
    reply.set("timeline", std::move(timeline));
    reply.set("exec", exec_id);

    // Exactly-one-reply arbitration with the reaper: whoever flips the flag
    // first owns the reply. Losing means the watchdog already answered (and
    // journaled) for this job while this thread was wedged — suppress
    // everything and hand the slot accounting back to the scheduler.
    if (ticket->replied->exchange(true)) {
      scheduler_.note_wedged_worker_returned();
      return;
    }

    if (reply.find("error") != nullptr)
      counters_.job_errors.fetch_add(1, std::memory_order_relaxed);
    if (!key.empty()) {
      // A key completing twice is the invariant the whole journal exists to
      // uphold; the counter is the chaos gate (must stay 0).
      if (replay_.contains(key))
        counters_.duplicate_exec.fetch_add(1, std::memory_order_relaxed);
      journal_->record_done(key, reply);  // durable BEFORE any send
      replay_.put(key, reply);
    }
    deliver_keyed_reply(ticket->wait_key, reply);
    const std::uint64_t end_ns = obs::now_ns();

    // Commit the phase spans now that every interval is known: one connected
    // trace per job — serve.job{queued,exec,reply} under the root, with the
    // engine's exec.run tree already parented at exec_ctx.
    {
      obs::ManualSpan queued("serve.job.queued", queued_ctx, root.span_id);
      queued.commit(admitted_ns, start_ns);
      obs::ManualSpan exec_span("serve.job.exec", exec_ctx, root.span_id);
      exec_span.commit(start_ns, exec_end_ns);
      obs::ManualSpan reply_span("serve.job.reply", obs::mint_child(root),
                                 root.span_id);
      reply_span.commit(reply_start_ns, end_ns);
      obs::ManualSpan job("serve.job", root, 0);
      job.arg("kind", std::string(kind));
      job.arg("tenant", tenant);
      job.arg("status", std::string(status));
      job.commit(admitted_ns, end_ns);
    }

    record_job_metrics(kind, tenant, end_ns - admitted_ns,
                       start_ns - admitted_ns, exec_end_ns - start_ns);
    obs::rolling_histogram("serve.job.reply_ns").record(end_ns - reply_start_ns);
    // Degraded/error traces always survive; healthy ones only if they are
    // among the window's slowest.
    tail_.observe(root.trace_id, end_ns - admitted_ns, end_ns, status,
                  std::strcmp(status, "ok") != 0);
  };
  std::string reject_reason;
  if (!scheduler_.submit(tenant, std::move(body), &reject_reason)) {
    counters_.overloaded.fetch_add(1, std::memory_order_relaxed);
    // Close the key in the journal (nothing ran; recovery must not
    // re-enqueue it) and bounce every waiter — retries may have attached
    // between registration and this rejection.
    if (!key.empty()) journal_->record_rejected(key);
    std::vector<Waiter> waiters;
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      auto it = inflight_.find(ticket->wait_key);
      if (it != inflight_.end()) {
        waiters = std::move(it->second);
        inflight_.erase(it);
      }
    }
    for (const Waiter& w : waiters) {
      send_reply(w.conn,
                 make_error_reply(w.request_id, "overloaded", reject_reason));
      ConnState::job_end(w.conn);
    }
  }
}

void QapproxServer::record_job_metrics(const char* kind,
                                       const std::string& tenant,
                                       std::uint64_t latency_ns,
                                       std::uint64_t queue_wait_ns,
                                       std::uint64_t exec_ns) {
  const std::uint64_t window_ns = static_cast<std::uint64_t>(
      std::max(1.0, options_.metrics_window_ms) * 1e6);
  const auto rec = [&](const std::string& name, std::uint64_t v) {
    obs::rolling_histogram(name, window_ns).record(v);
  };
  rec("serve.job.latency_ns", latency_ns);
  rec("serve.job.queue_wait_ns", queue_wait_ns);
  rec("serve.job.exec_ns", exec_ns);
  const std::string by_kind = std::string(".kind.") + kind;
  rec("serve.job.latency_ns" + by_kind, latency_ns);
  rec("serve.job.queue_wait_ns" + by_kind, queue_wait_ns);
  rec("serve.job.exec_ns" + by_kind, exec_ns);
  const std::string by_tenant = ".tenant." + tenant_label(tenant);
  rec("serve.job.latency_ns" + by_tenant, latency_ns);
  rec("serve.job.queue_wait_ns" + by_tenant, queue_wait_ns);
  rec("serve.job.exec_ns" + by_tenant, exec_ns);
}

void QapproxServer::send_reply(const std::shared_ptr<ConnState>& conn,
                               const json::Value& reply) {
  // Journal-recovered jobs have no connection: their reply lives in the
  // replay cache, waiting for the client's retry.
  if (conn == nullptr) return;
  if (!conn->write_ok.load(std::memory_order_relaxed)) return;
  std::string payload = reply.dump();
  bool overflow = false;
  {
    std::lock_guard<std::mutex> lock(conn->q_mu);
    if (conn->queued_bytes + payload.size() > options_.write_budget_bytes) {
      overflow = true;
      conn->queue.clear();
      conn->queued_bytes = 0;
    } else {
      conn->queued_bytes += payload.size();
      conn->queue.push_back(std::move(payload));
    }
  }
  if (overflow) {
    // Slow reader: the client cannot keep up with its own replies. Cut it
    // off at the budget — buffering without bound would let one stalled
    // client hold reply memory for the whole server hostage.
    conn->write_ok.store(false, std::memory_order_relaxed);
    counters_.slow_disconnects.fetch_add(1, std::memory_order_relaxed);
    obs::counter("serve.conn.slow_disconnects").add(1);
    ::shutdown(conn->fd, SHUT_RDWR);
  }
  conn->q_cv.notify_all();
}

void QapproxServer::writer_loop(std::shared_ptr<ConnState> conn) {
  std::unique_lock<std::mutex> lock(conn->q_mu);
  while (true) {
    conn->q_cv.wait(lock, [&] {
      return !conn->queue.empty() || conn->stop ||
             !conn->write_ok.load(std::memory_order_relaxed) ||
             (conn->reader_done && conn->pending_jobs == 0);
    });
    if (!conn->write_ok.load(std::memory_order_relaxed)) return;
    if (!conn->queue.empty()) {
      std::string payload = std::move(conn->queue.front());
      conn->queue.pop_front();
      conn->queued_bytes -= payload.size();
      lock.unlock();
      try {
        write_frame_fd(conn->fd, payload);
        counters_.replies.fetch_add(1, std::memory_order_relaxed);
      } catch (const common::Error&) {
        // Client went away (or SO_SNDTIMEO fired on a wedged peer);
        // remaining replies for this connection are dropped and counted,
        // never retried against a dead socket.
        conn->write_ok.store(false, std::memory_order_relaxed);
        counters_.write_failures.fetch_add(1, std::memory_order_relaxed);
      }
      lock.lock();
      continue;
    }
    // Queue drained: exit once no more replies can arrive (stop() drains the
    // scheduler before flagging, so pending replies are already queued) or
    // once this connection's reader is gone and its last job has replied.
    if (conn->stop || (conn->reader_done && conn->pending_jobs == 0)) return;
  }
}

void QapproxServer::deliver_keyed_reply(const std::string& key,
                                        const json::Value& reply) {
  std::vector<Waiter> waiters;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      waiters = std::move(it->second);
      inflight_.erase(it);
    }
  }
  // The first waiter started the execution; the rest are retries that
  // attached mid-flight and get the same reply marked as replayed.
  for (std::size_t i = 0; i < waiters.size(); ++i) {
    json::Value copy = reply;
    copy.set("id", waiters[i].request_id);
    if (i > 0) copy.set("replayed", true);
    send_reply(waiters[i].conn, copy);
    ConnState::job_end(waiters[i].conn);
  }
}

void QapproxServer::reap_job(const std::shared_ptr<JobTicket>& ticket) {
  // Arbitrate with the worker: if it replied between the scan and this
  // callback, there is nothing to reap.
  if (ticket->replied->exchange(true)) return;
  counters_.reaped.fetch_add(1, std::memory_order_relaxed);
  const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() -
                                ticket->started_at)
                                .count();
  char msg[160];
  std::snprintf(msg, sizeof(msg),
                "%s job ran %.0f ms against a %.0f ms budget without polling "
                "its deadline; slot reaped",
                ticket->kind.c_str(), elapsed_ms, ticket->budget_ms);
  json::Value reply = make_error_reply(ticket->request_id, "reaped", msg);
  reply.set("timed_out", true);
  if (!ticket->key.empty()) {
    // The key is burnt: the wedged thread may yet complete its side effects,
    // so a retry must replay this error, never re-execute. A fresh attempt
    // needs a fresh idempotency key.
    journal_->record_done(ticket->key, reply);
    replay_.put(ticket->key, reply);
  }
  deliver_keyed_reply(ticket->wait_key, reply);
  // Replace the wedged slot so throughput survives the loss; the surplus
  // worker retires once the stuck thread finally returns.
  scheduler_.spawn_surplus_worker();
}

void QapproxServer::replay_recovered_jobs() {
  if (journal_ == nullptr || !journal_->enabled()) return;
  std::vector<RecoveredJob> jobs = std::move(journal_->recovered());
  for (RecoveredJob& job : jobs) {
    std::string error;
    json::Value salvage_id;
    std::optional<RequestEnvelope> env =
        parse_request(job.request.dump(), &error, &salvage_id);
    if (!env || (env->type != RequestType::Simulate &&
                 env->type != RequestType::Synthesize)) {
      QC_LOG_WARN("serve", "journal: dropping unusable recovered job %s: %s",
                  job.key.c_str(), error.c_str());
      continue;
    }
    counters_.recovered_jobs.fetch_add(1, std::memory_order_relaxed);
    obs::counter("serve.journal.replayed_jobs").add(1);
    // No connection: the reply lands in the replay cache for the client's
    // retry. recovered=true keeps the journal's incomplete entry as-is.
    dispatch_job(nullptr, std::move(*env), /*recovered=*/true);
  }
}

void QapproxServer::wait() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
}

void QapproxServer::request_shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

void QapproxServer::stop() {
  if (!running_.exchange(false)) {
    request_shutdown();
    return;
  }
  stopping_.store(true);
  request_shutdown();

  // 1. Stop accepting: closing the listener unblocks accept().
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  // 2. Stop the watchdog before draining: a reap callback racing teardown
  // would touch the journal and scheduler mid-destruction.
  if (watchdog_) watchdog_->stop();

  // 3. Drain the scheduler: every accepted job runs under a cancelled token
  // and queues its reply while the connections are still alive.
  scheduler_.stop();

  // 4. Flush and join the writers (before the readers: every drained job's
  // reply is queued by now, and the writers must send them before the fd
  // shutdown below can race the last frames onto a closing socket).
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& weak : conns_)
      if (auto conn = weak.lock()) {
        {
          std::lock_guard<std::mutex> ql(conn->q_mu);
          conn->stop = true;
        }
        conn->q_cv.notify_all();
      }
  }
  for (std::thread& t : writers_)
    if (t.joinable()) t.join();
  writers_.clear();

  // 5. Unblock readers (shutdown, not close — ConnState owns the fd) and
  // join them.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& weak : conns_)
      if (auto conn = weak.lock()) ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (std::thread& t : readers_)
    if (t.joinable()) t.join();
  readers_.clear();
  conns_.clear();

  // 6. Stop the metrics exporter and leave final observability artifacts:
  // the pending tail-sample window, one last metrics snapshot, and the
  // armed QAPPROX_TRACE / QAPPROX_METRICS exports — a SIGTERM'd daemon must
  // not rely on atexit ordering to preserve its soak evidence.
  {
    std::lock_guard<std::mutex> lock(exporter_mu_);
    exporter_stop_ = true;
  }
  exporter_cv_.notify_all();
  if (exporter_thread_.joinable()) exporter_thread_.join();
  tail_.flush();
  if (options_.metrics_period_ms > 0.0) write_metric_snapshots();
  obs::flush_exports();

  // 7. Compact the journal: appends are quiesced, so a clean drain leaves a
  // DONE-only log (the CI chaos gate walks the frames and asserts exactly
  // that).
  if (journal_) {
    try {
      journal_->compact();
    } catch (const common::Error& e) {
      QC_LOG_WARN("serve", "journal compaction failed: %s", e.what());
    }
  }

  // 8. Snapshot the synthesis cache for the next warm start.
  if (!options_.synth_cache_dir.empty()) {
    try {
      const std::size_t n = synth::synth_cache_save(options_.synth_cache_dir);
      QC_LOG_INFO("serve", "saved %zu synthesis-cache entries to %s", n,
                  options_.synth_cache_dir.c_str());
    } catch (const common::Error& e) {
      QC_LOG_WARN("serve", "synthesis-cache snapshot failed: %s", e.what());
    }
  }
  ::unlink(options_.socket_path.c_str());
}

json::Value QapproxServer::build_stats() const {
  json::Value stats = json::Value::object();
  const double uptime_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - started_at_)
          .count();
  stats.set("uptime_ms", uptime_ms);
  stats.set("build", obs::build_info_summary());
  stats.set("socket", options_.socket_path);

  json::Value requests = json::Value::object();
  requests.set("connections", counters_.connections.load());
  requests.set("total", counters_.requests.load());
  requests.set("ping", counters_.ping.load());
  requests.set("simulate", counters_.simulate.load());
  requests.set("synthesize", counters_.synthesize.load());
  requests.set("stats", counters_.stats.load());
  requests.set("metrics", counters_.metrics.load());
  requests.set("shutdown", counters_.shutdown.load());
  requests.set("bad_requests", counters_.bad_requests.load());
  requests.set("oversized_frames", counters_.oversized_frames.load());
  requests.set("overloaded", counters_.overloaded.load());
  requests.set("replies", counters_.replies.load());
  requests.set("write_failures", counters_.write_failures.load());
  requests.set("job_errors", counters_.job_errors.load());
  stats.set("requests", std::move(requests));

  const SchedulerStats sched = scheduler_.stats();
  json::Value scheduler = json::Value::object();
  scheduler.set("workers", options_.scheduler.workers);
  scheduler.set("queue_cap", options_.scheduler.queue_cap);
  scheduler.set("per_tenant_cap", options_.scheduler.per_tenant_cap);
  scheduler.set("queued", sched.queued);
  scheduler.set("running", sched.running);
  scheduler.set("tenants", sched.tenants);
  scheduler.set("submitted", sched.submitted);
  scheduler.set("rejected", sched.rejected);
  scheduler.set("completed", sched.completed);
  scheduler.set("peak_queued", sched.peak_queued);
  scheduler.set("live_workers", sched.live_workers);
  scheduler.set("surplus_spawned", sched.surplus_spawned);
  stats.set("scheduler", std::move(scheduler));

  const DurabilityStats dur = durability_stats();
  json::Value durability = json::Value::object();
  durability.set("replayed", dur.replayed);
  durability.set("attached", dur.attached);
  durability.set("recovered_jobs", dur.recovered_jobs);
  durability.set("reaped", dur.reaped);
  durability.set("duplicate_exec", dur.duplicate_exec);  // chaos gate: == 0
  durability.set("slow_disconnects", dur.slow_disconnects);
  stats.set("durability", std::move(durability));

  const JournalStats js = journal_stats();
  json::Value journal = json::Value::object();
  journal.set("enabled", js.enabled);
  journal.set("path", js.path);
  journal.set("accepted", js.accepted);
  journal.set("started", js.started);
  journal.set("done", js.done);
  journal.set("appended_bytes", js.appended_bytes);
  journal.set("sync_calls", js.sync_calls);
  journal.set("recovered_replies", js.recovered_replies);
  journal.set("recovered_incomplete", js.recovered_incomplete);
  journal.set("torn_bytes", js.torn_bytes);
  journal.set("compactions", js.compactions);
  journal.set("recovery_ms", js.recovery_ms);
  stats.set("journal", std::move(journal));

  json::Value replay = json::Value::object();
  replay.set("entries", replay_.size());
  replay.set("cap", replay_.cap());
  replay.set("hits", replay_.hits());
  replay.set("misses", replay_.misses());
  replay.set("evictions", replay_.evictions());
  stats.set("replay_cache", std::move(replay));

  const WatchdogStats ws = watchdog_stats();
  json::Value watchdog = json::Value::object();
  watchdog.set("enabled", ws.enabled);
  watchdog.set("scans", ws.scans);
  watchdog.set("strikes", ws.strikes);
  watchdog.set("reaped", ws.reaped);
  watchdog.set("watched", ws.watched);
  stats.set("watchdog", std::move(watchdog));

  const exec::CacheSnapshot engine = driver::engine().cache_stats_snapshot();
  json::Value engine_cache = json::Value::object();
  auto cache_entry = [](std::size_t hits, std::size_t misses,
                        std::size_t entries) {
    json::Value v = json::Value::object();
    v.set("hits", hits);
    v.set("misses", misses);
    v.set("entries", entries);
    return v;
  };
  engine_cache.set("transpile",
                   cache_entry(engine.stats.transpile_hits,
                               engine.stats.transpile_misses,
                               engine.transpile_entries));
  engine_cache.set("model", cache_entry(engine.stats.model_hits,
                                        engine.stats.model_misses,
                                        engine.model_entries));
  engine_cache.set("compiled", cache_entry(engine.stats.compiled_hits,
                                           engine.stats.compiled_misses,
                                           engine.compiled_entries));
  engine_cache.set("matrix", cache_entry(engine.stats.matrix_hits,
                                         engine.stats.matrix_misses,
                                         engine.matrix_entries));
  stats.set("engine_cache", std::move(engine_cache));

  const synth::SynthCacheStats synth_stats = synth::synth_cache_stats();
  json::Value synth_cache = json::Value::object();
  synth_cache.set("hits", synth_stats.hits);
  synth_cache.set("misses", synth_stats.misses);
  synth_cache.set("entries", synth_stats.entries);
  synth_cache.set("dir", options_.synth_cache_dir);
  synth_cache.set("warm_loaded", warm_loaded_);
  stats.set("synth_cache", std::move(synth_cache));

  // Partitioned-resynthesis traffic across every partition-preset job this
  // process has served (the same synth.partition.* counters QAPPROX_METRICS
  // exports): how well intra-call dedupe + the synthesis cache collapse
  // recurring blocks, and whether any per-block searches failed.
  json::Value partition = json::Value::object();
  partition.set("calls", obs::counter("synth.partition.calls").value());
  partition.set("blocks_total",
                obs::counter("synth.partition.blocks_total").value());
  partition.set("blocks_resynthesized",
                obs::counter("synth.partition.blocks_resynthesized").value());
  partition.set("unique_blocks",
                obs::counter("synth.partition.unique_blocks").value());
  partition.set("dedupe_hits",
                obs::counter("synth.partition.dedupe_hits").value());
  partition.set("cache_hits",
                obs::counter("synth.partition.cache_hits").value());
  partition.set("cache_misses",
                obs::counter("synth.partition.cache_misses").value());
  partition.set("block_failures",
                obs::counter("synth.partition.block_failures").value());
  stats.set("partition", std::move(partition));

  // Gate-fusion effectiveness across every compile this process has run
  // (the same sim.compile.* counters QAPPROX_METRICS exports), so operators
  // can see how much the k<=4 fusion pass is collapsing job circuits.
  json::Value compile = json::Value::object();
  compile.set("circuits", obs::counter("sim.compile.circuits").value());
  compile.set("source_gates", obs::counter("sim.compile.source_gates").value());
  compile.set("fused_gates", obs::counter("sim.compile.fused_gates").value());
  compile.set("steps", obs::counter("sim.compile.steps").value());
  json::Value fused_blocks = json::Value::object();
  fused_blocks.set("k1", obs::counter("sim.compile.fused_blocks.k1").value());
  fused_blocks.set("k2", obs::counter("sim.compile.fused_blocks.k2").value());
  fused_blocks.set("k3", obs::counter("sim.compile.fused_blocks.k3").value());
  fused_blocks.set("k4", obs::counter("sim.compile.fused_blocks.k4").value());
  compile.set("fused_blocks", std::move(fused_blocks));
  compile.set("simd_isa",
              linalg::simd_isa_name(linalg::active_simd_isa()));
  stats.set("compile", std::move(compile));

  const TailSamplerStats tail = tail_.stats();
  json::Value tail_json = json::Value::object();
  tail_json.set("dir", options_.trace_dir);
  tail_json.set("observed", tail.observed);
  tail_json.set("captured", tail.captured);
  tail_json.set("evicted", tail.evicted);
  tail_json.set("write_failures", tail.write_failures);
  stats.set("tail_sampler", std::move(tail_json));

  stats.set("faults", common::faults::enabled() ? common::faults::active_spec()
                                                : std::string());

  // The whole PR3 metrics registry rides along, parsed back into the tree
  // (obs emits valid JSON; if that ever regresses, ship it as a string).
  json::Value metrics;
  std::string parse_error;
  if (json::try_parse(obs::metrics_json(), &metrics, &parse_error)) {
    stats.set("metrics", std::move(metrics));
  } else {
    stats.set("metrics", obs::metrics_json());
  }
  return stats;
}

QapproxServer::DurabilityStats QapproxServer::durability_stats() const {
  DurabilityStats d;
  d.replayed = counters_.replayed.load();
  d.attached = counters_.attached.load();
  d.recovered_jobs = counters_.recovered_jobs.load();
  d.reaped = counters_.reaped.load();
  d.duplicate_exec = counters_.duplicate_exec.load();
  d.slow_disconnects = counters_.slow_disconnects.load();
  return d;
}

WatchdogStats QapproxServer::watchdog_stats() const {
  return watchdog_ ? watchdog_->stats() : WatchdogStats{};
}

JournalStats QapproxServer::journal_stats() const {
  return journal_ ? journal_->stats() : JournalStats{};
}

json::Value QapproxServer::build_metrics(const std::string& format) const {
  json::Value result = json::Value::object();
  const double uptime_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - started_at_)
          .count();
  result.set("uptime_ms", uptime_ms);
  if (format == "prometheus") {
    result.set("content_type", "text/plain; version=0.0.4");
    result.set("body", obs::metrics_prometheus());
    return result;
  }
  // Live scheduler depths ride along so one poll paints the whole dashboard.
  const SchedulerStats sched = scheduler_.stats();
  json::Value queue = json::Value::object();
  queue.set("queued", sched.queued);
  queue.set("running", sched.running);
  queue.set("tenants", sched.tenants);
  result.set("queue", std::move(queue));
  json::Value metrics;
  std::string parse_error;
  if (json::try_parse(obs::metrics_json(), &metrics, &parse_error))
    result.set("metrics", std::move(metrics));
  else
    result.set("metrics", obs::metrics_json());
  return result;
}

}  // namespace qc::serve
