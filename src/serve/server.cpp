#include "serve/server.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/driver.hpp"
#include "common/error.hpp"
#include "common/faults.hpp"
#include "linalg/kernels.hpp"
#include "obs/obs.hpp"
#include "serve/jobs.hpp"
#include "synth/cache.hpp"
#include "synth/persist.hpp"

namespace qc::serve {

namespace json = common::json;
namespace driver = common::driver;

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0' || v == 0) {
    QC_LOG_WARN("serve", "ignoring malformed %s='%s'", name, raw);
    return fallback;
  }
  return static_cast<std::size_t>(v);
}

}  // namespace

ServerOptions ServerOptions::from_env() {
  ServerOptions opts;
  if (const char* sock = std::getenv("QAPPROX_SERVE_SOCKET"))
    if (*sock != '\0') opts.socket_path = sock;
  opts.scheduler.workers = env_size("QAPPROX_SERVE_WORKERS", opts.scheduler.workers);
  opts.scheduler.queue_cap =
      env_size("QAPPROX_SERVE_QUEUE_CAP", opts.scheduler.queue_cap);
  opts.scheduler.per_tenant_cap =
      std::min(opts.scheduler.per_tenant_cap, opts.scheduler.queue_cap);
  opts.synth_cache_dir = synth::synth_cache_dir_env();
  return opts;
}

/// Per-connection shared state. Reader thread and every queued job hold a
/// shared_ptr; the last owner's destructor closes the fd, so replies for a
/// disconnected client degrade to counted write failures, never a write to
/// a reused descriptor.
struct QapproxServer::ConnState {
  int fd = -1;
  std::mutex write_mu;
  std::atomic<bool> write_ok{true};
  ~ConnState() {
    if (fd >= 0) ::close(fd);
  }
};

QapproxServer::QapproxServer(ServerOptions options)
    : options_(std::move(options)), scheduler_(options_.scheduler) {}

QapproxServer::~QapproxServer() { stop(); }

void QapproxServer::start() {
  QC_CHECK_MSG(!running_.load(), "server already started");
  driver::init_runtime();
  started_at_ = std::chrono::steady_clock::now();

  if (!options_.synth_cache_dir.empty()) {
    warm_loaded_ = synth::synth_cache_load(options_.synth_cache_dir);
    if (warm_loaded_ > 0)
      QC_LOG_INFO("serve", "warm-started %llu synthesis-cache entries from %s",
                  static_cast<unsigned long long>(warm_loaded_),
                  options_.synth_cache_dir.c_str());
  }

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  QC_CHECK_MSG(options_.socket_path.size() < sizeof(addr.sun_path),
               "socket path too long: " + options_.socket_path);
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw common::Error(std::string("serve: socket() failed: ") +
                        std::strerror(errno));
  ::unlink(options_.socket_path.c_str());  // stale socket from a dead server
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw common::Error("serve: bind(" + options_.socket_path +
                        ") failed: " + std::strerror(err));
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw common::Error(std::string("serve: listen() failed: ") +
                        std::strerror(err));
  }

  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  QC_LOG_INFO("serve", "listening on %s (%zu workers, queue cap %zu)",
              options_.socket_path.c_str(), options_.scheduler.workers,
              options_.scheduler.queue_cap);
}

void QapproxServer::accept_loop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (stop()) or fatal: accept loop ends
    }
    counters_.connections.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_shared<ConnState>();
    conn->fd = fd;
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (stopping_.load()) return;  // raced with stop(): conn closes via dtor
    conns_.push_back(conn);
    readers_.emplace_back([this, conn = std::move(conn)]() mutable {
      handle_connection(std::move(conn));
    });
  }
}

void QapproxServer::handle_connection(std::shared_ptr<ConnState> conn) {
  FrameDecoder decoder(options_.max_frame_bytes);
  while (!decoder.poisoned()) {
    while (auto frame = decoder.next()) {
      if (frame->oversized) {
        counters_.oversized_frames.fetch_add(1, std::memory_order_relaxed);
        send_reply(conn, make_error_reply(
                             json::Value(), "bad_request",
                             "frame of " + std::to_string(frame->declared_size) +
                                 " bytes exceeds the " +
                                 std::to_string(options_.max_frame_bytes) +
                                 "-byte limit"));
        continue;
      }
      handle_frame(conn, frame->payload);
    }
    if (decoder.poisoned()) break;
    if (!read_into_decoder(conn->fd, decoder)) break;  // EOF / error / stop()
  }
}

void QapproxServer::handle_frame(const std::shared_ptr<ConnState>& conn,
                                 const std::string& payload) {
  counters_.requests.fetch_add(1, std::memory_order_relaxed);
  std::string error;
  json::Value salvage_id;
  std::optional<RequestEnvelope> env = parse_request(payload, &error, &salvage_id);
  if (!env) {
    counters_.bad_requests.fetch_add(1, std::memory_order_relaxed);
    send_reply(conn, make_error_reply(salvage_id, "bad_request", error));
    return;
  }
  switch (env->type) {
    case RequestType::Ping: {
      counters_.ping.fetch_add(1, std::memory_order_relaxed);
      json::Value result = json::Value::object();
      result.set("pong", true);
      result.set("build", obs::build_info_summary());
      send_reply(conn, make_ok_reply(env->id, std::move(result)));
      return;
    }
    case RequestType::Stats: {
      counters_.stats.fetch_add(1, std::memory_order_relaxed);
      send_reply(conn, make_ok_reply(env->id, build_stats()));
      return;
    }
    case RequestType::Shutdown: {
      counters_.shutdown.fetch_add(1, std::memory_order_relaxed);
      json::Value result = json::Value::object();
      result.set("stopping", true);
      send_reply(conn, make_ok_reply(env->id, std::move(result)));
      request_shutdown();
      return;
    }
    case RequestType::Simulate:
    case RequestType::Synthesize:
      dispatch_job(conn, std::move(*env));
      return;
  }
}

void QapproxServer::dispatch_job(const std::shared_ptr<ConnState>& conn,
                                 RequestEnvelope env) {
  (env.type == RequestType::Simulate ? counters_.simulate : counters_.synthesize)
      .fetch_add(1, std::memory_order_relaxed);
  const std::string tenant = env.tenant;
  const json::Value request_id = env.id;  // survives the move for rejections
  // The job owns the envelope and a reference to the connection; the reply
  // goes out from the worker thread, streaming results in completion order.
  auto body = [this, conn, env = std::move(env)](
                  const common::CancelToken& cancel) {
    common::Deadline deadline = env.deadline_ms > 0
                                    ? common::Deadline::after_ms(env.deadline_ms)
                                    : common::Deadline::from_env();
    deadline = deadline.with_token(cancel);
    json::Value reply;
    try {
      const JobOutcome outcome =
          env.type == RequestType::Simulate
              ? run_simulate_job(env.params, deadline)
              : run_synthesize_job(env.params, deadline);
      reply = outcome.degraded
                  ? make_degraded_reply(env.id, outcome.result, outcome.why)
                  : make_ok_reply(env.id, outcome.result);
    } catch (const common::TimeoutError& e) {
      reply = make_error_reply(env.id, "timeout", e.what());
    } catch (const common::ContractError& e) {
      reply = make_error_reply(env.id, "contract", e.what());
    } catch (const common::SynthesisError& e) {
      reply = make_error_reply(env.id, "synthesis", e.what());
    } catch (const common::SimulationError& e) {
      reply = make_error_reply(env.id, "simulation", e.what());
    } catch (const std::exception& e) {
      reply = make_error_reply(env.id, "internal", e.what());
    }
    if (reply.find("error") != nullptr)
      counters_.job_errors.fetch_add(1, std::memory_order_relaxed);
    send_reply(conn, reply);
  };
  std::string reject_reason;
  if (!scheduler_.submit(tenant, std::move(body), &reject_reason)) {
    counters_.overloaded.fetch_add(1, std::memory_order_relaxed);
    send_reply(conn, make_error_reply(request_id, "overloaded", reject_reason));
  }
}

void QapproxServer::send_reply(const std::shared_ptr<ConnState>& conn,
                               const json::Value& reply) {
  if (!conn->write_ok.load(std::memory_order_relaxed)) return;
  const std::string payload = reply.dump();
  std::lock_guard<std::mutex> lock(conn->write_mu);
  try {
    write_frame_fd(conn->fd, payload);
    counters_.replies.fetch_add(1, std::memory_order_relaxed);
  } catch (const common::Error&) {
    // Client went away; remaining replies for this connection are dropped
    // (and counted) rather than retried against a dead socket.
    conn->write_ok.store(false, std::memory_order_relaxed);
    counters_.write_failures.fetch_add(1, std::memory_order_relaxed);
  }
}

void QapproxServer::wait() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
}

void QapproxServer::request_shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

void QapproxServer::stop() {
  if (!running_.exchange(false)) {
    request_shutdown();
    return;
  }
  stopping_.store(true);
  request_shutdown();

  // 1. Stop accepting: closing the listener unblocks accept().
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  // 2. Drain the scheduler: every accepted job runs under a cancelled token
  // and sends its reply while the connections are still alive.
  scheduler_.stop();

  // 3. Unblock readers (shutdown, not close — ConnState owns the fd) and
  // join them.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& weak : conns_)
      if (auto conn = weak.lock()) ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (std::thread& t : readers_)
    if (t.joinable()) t.join();
  readers_.clear();
  conns_.clear();

  // 4. Snapshot the synthesis cache for the next warm start.
  if (!options_.synth_cache_dir.empty()) {
    try {
      const std::size_t n = synth::synth_cache_save(options_.synth_cache_dir);
      QC_LOG_INFO("serve", "saved %zu synthesis-cache entries to %s", n,
                  options_.synth_cache_dir.c_str());
    } catch (const common::Error& e) {
      QC_LOG_WARN("serve", "synthesis-cache snapshot failed: %s", e.what());
    }
  }
  ::unlink(options_.socket_path.c_str());
}

json::Value QapproxServer::build_stats() const {
  json::Value stats = json::Value::object();
  const double uptime_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - started_at_)
          .count();
  stats.set("uptime_ms", uptime_ms);
  stats.set("build", obs::build_info_summary());
  stats.set("socket", options_.socket_path);

  json::Value requests = json::Value::object();
  requests.set("connections", counters_.connections.load());
  requests.set("total", counters_.requests.load());
  requests.set("ping", counters_.ping.load());
  requests.set("simulate", counters_.simulate.load());
  requests.set("synthesize", counters_.synthesize.load());
  requests.set("stats", counters_.stats.load());
  requests.set("shutdown", counters_.shutdown.load());
  requests.set("bad_requests", counters_.bad_requests.load());
  requests.set("oversized_frames", counters_.oversized_frames.load());
  requests.set("overloaded", counters_.overloaded.load());
  requests.set("replies", counters_.replies.load());
  requests.set("write_failures", counters_.write_failures.load());
  requests.set("job_errors", counters_.job_errors.load());
  stats.set("requests", std::move(requests));

  const SchedulerStats sched = scheduler_.stats();
  json::Value scheduler = json::Value::object();
  scheduler.set("workers", options_.scheduler.workers);
  scheduler.set("queue_cap", options_.scheduler.queue_cap);
  scheduler.set("per_tenant_cap", options_.scheduler.per_tenant_cap);
  scheduler.set("queued", sched.queued);
  scheduler.set("running", sched.running);
  scheduler.set("tenants", sched.tenants);
  scheduler.set("submitted", sched.submitted);
  scheduler.set("rejected", sched.rejected);
  scheduler.set("completed", sched.completed);
  scheduler.set("peak_queued", sched.peak_queued);
  stats.set("scheduler", std::move(scheduler));

  const exec::CacheSnapshot engine = driver::engine().cache_stats_snapshot();
  json::Value engine_cache = json::Value::object();
  auto cache_entry = [](std::size_t hits, std::size_t misses,
                        std::size_t entries) {
    json::Value v = json::Value::object();
    v.set("hits", hits);
    v.set("misses", misses);
    v.set("entries", entries);
    return v;
  };
  engine_cache.set("transpile",
                   cache_entry(engine.stats.transpile_hits,
                               engine.stats.transpile_misses,
                               engine.transpile_entries));
  engine_cache.set("model", cache_entry(engine.stats.model_hits,
                                        engine.stats.model_misses,
                                        engine.model_entries));
  engine_cache.set("compiled", cache_entry(engine.stats.compiled_hits,
                                           engine.stats.compiled_misses,
                                           engine.compiled_entries));
  engine_cache.set("matrix", cache_entry(engine.stats.matrix_hits,
                                         engine.stats.matrix_misses,
                                         engine.matrix_entries));
  stats.set("engine_cache", std::move(engine_cache));

  const synth::SynthCacheStats synth_stats = synth::synth_cache_stats();
  json::Value synth_cache = json::Value::object();
  synth_cache.set("hits", synth_stats.hits);
  synth_cache.set("misses", synth_stats.misses);
  synth_cache.set("entries", synth_stats.entries);
  synth_cache.set("dir", options_.synth_cache_dir);
  synth_cache.set("warm_loaded", warm_loaded_);
  stats.set("synth_cache", std::move(synth_cache));

  // Gate-fusion effectiveness across every compile this process has run
  // (the same sim.compile.* counters QAPPROX_METRICS exports), so operators
  // can see how much the k<=4 fusion pass is collapsing job circuits.
  json::Value compile = json::Value::object();
  compile.set("circuits", obs::counter("sim.compile.circuits").value());
  compile.set("source_gates", obs::counter("sim.compile.source_gates").value());
  compile.set("fused_gates", obs::counter("sim.compile.fused_gates").value());
  compile.set("steps", obs::counter("sim.compile.steps").value());
  json::Value fused_blocks = json::Value::object();
  fused_blocks.set("k1", obs::counter("sim.compile.fused_blocks.k1").value());
  fused_blocks.set("k2", obs::counter("sim.compile.fused_blocks.k2").value());
  fused_blocks.set("k3", obs::counter("sim.compile.fused_blocks.k3").value());
  fused_blocks.set("k4", obs::counter("sim.compile.fused_blocks.k4").value());
  compile.set("fused_blocks", std::move(fused_blocks));
  compile.set("simd_isa",
              linalg::simd_isa_name(linalg::active_simd_isa()));
  stats.set("compile", std::move(compile));

  stats.set("faults", common::faults::enabled() ? common::faults::active_spec()
                                                : std::string());

  // The whole PR3 metrics registry rides along, parsed back into the tree
  // (obs emits valid JSON; if that ever regresses, ship it as a string).
  json::Value metrics;
  std::string parse_error;
  if (json::try_parse(obs::metrics_json(), &metrics, &parse_error)) {
    stats.set("metrics", std::move(metrics));
  } else {
    stats.set("metrics", obs::metrics_json());
  }
  return stats;
}

}  // namespace qc::serve
