// Length-prefixed JSON framing for the qapprox wire protocol.
//
// A frame is a 4-byte little-endian payload length followed by that many
// bytes of UTF-8 JSON. The decoder is a push-style state machine: feed() it
// whatever the socket produced — a single byte, half a length prefix, three
// frames at once — and poll next() for completed payloads. That makes the
// edge cases (partial reads, split prefixes, pipelined frames) unit-testable
// without a socket.
//
// Oversized frames are handled without poisoning the stream: the decoder
// knows the declared length, so it swallows exactly that many bytes, emits
// an `Oversized` event (the server replies with a structured error), and
// resynchronizes on the next frame. A declared length beyond kSaneFrameCap
// (a length field that cannot be a real frame — usually a desynced or
// non-protocol peer) is unrecoverable and poisons the decoder.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>

namespace qc::serve {

/// Default per-frame payload cap (server option; clients use it too).
inline constexpr std::size_t kDefaultMaxFrameBytes = 8u << 20;  // 8 MiB

/// Absolute ceiling on a *declared* length before the stream is considered
/// desynchronized (not just impolite). 256 MiB.
inline constexpr std::size_t kSaneFrameCap = 256u << 20;

class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  struct Frame {
    std::string payload;   // empty when oversized
    bool oversized = false;
    std::size_t declared_size = 0;  // for oversized frames
  };

  /// Consumes `len` bytes from the peer. Cheap to call with tiny chunks.
  void feed(const char* data, std::size_t len);

  /// Next completed frame, if any.
  std::optional<Frame> next();

  /// True when the stream is unrecoverably desynchronized (declared length
  /// above kSaneFrameCap). The connection should be closed.
  bool poisoned() const { return poisoned_; }

  /// Bytes currently buffered (tests / backpressure accounting).
  std::size_t buffered_bytes() const { return buffer_.size(); }

 private:
  void pump();

  std::size_t max_frame_bytes_;
  std::string buffer_;           // raw unconsumed bytes
  std::deque<Frame> completed_;
  bool poisoned_ = false;
  // Oversized-frame skip state: bytes of the declared payload still to drop.
  std::size_t skip_remaining_ = 0;
  std::size_t skip_declared_ = 0;
};

/// Encodes one frame (4-byte LE length + payload).
std::string encode_frame(const std::string& payload);

/// Blocking frame write to a connected socket/pipe fd; loops over partial
/// writes and EINTR, suppresses SIGPIPE. Throws common::Error on failure.
void write_frame_fd(int fd, const std::string& payload);

/// Reads whatever is available on `fd` into the decoder (one read() call).
/// Returns false on EOF or a fatal read error; EINTR retries internally.
bool read_into_decoder(int fd, FrameDecoder& decoder);

}  // namespace qc::serve
