#include "serve/wire.hpp"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include "common/error.hpp"

namespace qc::serve {

void FrameDecoder::feed(const char* data, std::size_t len) {
  if (poisoned_ || len == 0) return;
  buffer_.append(data, len);
  pump();
}

void FrameDecoder::pump() {
  while (!poisoned_) {
    if (skip_remaining_ > 0) {
      const std::size_t drop = std::min(skip_remaining_, buffer_.size());
      buffer_.erase(0, drop);
      skip_remaining_ -= drop;
      if (skip_remaining_ > 0) return;  // need more bytes to finish skipping
      Frame f;
      f.oversized = true;
      f.declared_size = skip_declared_;
      completed_.push_back(std::move(f));
      continue;
    }
    if (buffer_.size() < 4) return;
    std::uint32_t len = 0;
    std::memcpy(&len, buffer_.data(), 4);  // little-endian hosts only (x86/arm)
    const std::size_t payload_len = len;
    if (payload_len > kSaneFrameCap) {
      poisoned_ = true;
      return;
    }
    if (payload_len > max_frame_bytes_) {
      buffer_.erase(0, 4);
      skip_declared_ = payload_len;
      skip_remaining_ = payload_len;
      continue;
    }
    if (buffer_.size() < 4 + payload_len) return;
    Frame f;
    f.payload = buffer_.substr(4, payload_len);
    buffer_.erase(0, 4 + payload_len);
    completed_.push_back(std::move(f));
  }
}

std::optional<FrameDecoder::Frame> FrameDecoder::next() {
  if (completed_.empty()) return std::nullopt;
  Frame f = std::move(completed_.front());
  completed_.pop_front();
  return f;
}

std::string encode_frame(const std::string& payload) {
  QC_CHECK_MSG(payload.size() <= kSaneFrameCap, "frame payload too large");
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  std::string out;
  out.reserve(4 + payload.size());
  out.append(reinterpret_cast<const char*>(&len), 4);
  out.append(payload);
  return out;
}

void write_frame_fd(int fd, const std::string& payload) {
  const std::string frame = encode_frame(payload);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw common::Error(std::string("wire: send failed: ") +
                          std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool read_into_decoder(int fd, FrameDecoder& decoder) {
  char buf[65536];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      decoder.feed(buf, static_cast<std::size_t>(n));
      return true;
    }
    if (n == 0) return false;  // EOF
    if (errno == EINTR) continue;
    return false;
  }
}

}  // namespace qc::serve
