#include "exec/engine.hpp"

#include <bit>
#include <utility>

#include "common/error.hpp"
#include "common/faults.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "metrics/distribution.hpp"
#include "obs/obs.hpp"
#include "sim/statevector.hpp"
#include "transpile/routing.hpp"

namespace qc::exec {

namespace {

/// Per-phase duration histograms (ns). Sampled only while
/// obs::timing_enabled(); name contract documented in DESIGN.md §obs.
struct EngineTimers {
  obs::Histogram& run{obs::histogram("exec.run_ns")};
  obs::Histogram& transpile{obs::histogram("exec.transpile_ns")};
  obs::Histogram& model{obs::histogram("exec.model_ns")};
  obs::Histogram& compile{obs::histogram("exec.compile_ns")};
  obs::Histogram& evolve{obs::histogram("exec.evolve_ns")};
};

EngineTimers& timers() {
  static EngineTimers t;
  return t;
}

/// Mirrors one run's kernel dispatch classes (RunRecord::kernel_counts) into
/// the process-wide sim.kernel.* counters, one name per KernelKind label.
void record_kernel_metrics(const linalg::KernelCounts& kc) {
  struct KernelCounters {
    obs::Counter& oneq_diag{obs::counter("sim.kernel.1q_diag")};
    obs::Counter& oneq_general{obs::counter("sim.kernel.1q_general")};
    obs::Counter& twoq_diag{obs::counter("sim.kernel.2q_diag")};
    obs::Counter& twoq_perm_phase{obs::counter("sim.kernel.2q_perm_phase")};
    obs::Counter& twoq_general{obs::counter("sim.kernel.2q_general")};
    obs::Counter& threeq_diag{obs::counter("sim.kernel.3q_diag")};
    obs::Counter& threeq_general{obs::counter("sim.kernel.3q_general")};
    obs::Counter& fourq_diag{obs::counter("sim.kernel.4q_diag")};
    obs::Counter& fourq_general{obs::counter("sim.kernel.4q_general")};
    obs::Counter& generic{obs::counter("sim.kernel.generic")};
  };
  static KernelCounters c;
  c.oneq_diag.add(kc.oneq_diag);
  c.oneq_general.add(kc.oneq_general);
  c.twoq_diag.add(kc.twoq_diag);
  c.twoq_perm_phase.add(kc.twoq_perm_phase);
  c.twoq_general.add(kc.twoq_general);
  c.threeq_diag.add(kc.threeq_diag);
  c.threeq_general.add(kc.threeq_general);
  c.fourq_diag.add(kc.fourq_diag);
  c.fourq_general.add(kc.fourq_general);
  c.generic.add(kc.generic);
}

}  // namespace

// ---- ExecutionConfig -------------------------------------------------------

ExecutionConfig ExecutionConfig::simulator(const noise::DeviceProperties& device) {
  ExecutionConfig cfg;
  cfg.device = device;
  cfg.optimization_level = 1;
  return cfg;
}

ExecutionConfig ExecutionConfig::hardware(const noise::DeviceProperties& device) {
  ExecutionConfig cfg;
  cfg.device = device;
  cfg.optimization_level = 3;
  cfg.use_trajectories = true;
  cfg.noise_options.coherent_cx_overrotation = true;
  cfg.noise_options.zz_crosstalk = true;
  cfg.noise_options.hardware_drift_scale = 4.5;
  cfg.noise_options.hardware_readout_scale = 2.0;
  return cfg;
}

ExecutionConfig ExecutionConfig::noise_free(const noise::DeviceProperties& device) {
  ExecutionConfig cfg;
  cfg.device = device;
  cfg.ideal = true;
  cfg.optimization_level = 1;
  return cfg;
}

transpile::TranspileOptions ExecutionConfig::transpile_options() const {
  transpile::TranspileOptions topts;
  topts.optimization_level = optimization_level;
  topts.initial_layout = initial_layout;
  topts.router = router;
  return topts;
}

// ---- cache plumbing --------------------------------------------------------

void ExecutionEngine::count_cache_event(CacheId id, bool hit) {
  // Process-wide counters (all engines); the per-engine CacheStats feeds
  // cache_stats() and the run-record hit flags.
  struct Pair {
    obs::Counter& hits;
    obs::Counter& misses;
  };
  static Pair global[] = {
      {obs::counter("exec.cache.transpile.hits"),
       obs::counter("exec.cache.transpile.misses")},
      {obs::counter("exec.cache.model.hits"),
       obs::counter("exec.cache.model.misses")},
      {obs::counter("exec.cache.compiled.hits"),
       obs::counter("exec.cache.compiled.misses")},
      {obs::counter("exec.cache.matrix.hits"),
       obs::counter("exec.cache.matrix.misses")},
  };
  Pair& pair = global[static_cast<int>(id)];
  (hit ? pair.hits : pair.misses).add(1);
  switch (id) {
    case CacheId::Transpile:
      ++(hit ? stats_.transpile_hits : stats_.transpile_misses);
      break;
    case CacheId::Model:
      ++(hit ? stats_.model_hits : stats_.model_misses);
      break;
    case CacheId::Compiled:
      ++(hit ? stats_.compiled_hits : stats_.compiled_misses);
      break;
    case CacheId::Matrix:
      ++(hit ? stats_.matrix_hits : stats_.matrix_misses);
      break;
  }
}

template <typename K, typename V, typename Make>
std::shared_ptr<const V> ExecutionEngine::get_or_compute(OnceCache<K, V>& cache,
                                                         CacheId id, const K& key,
                                                         bool* was_hit,
                                                         Make&& make) {
  std::shared_ptr<Slot<V>> slot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = cache.entries.try_emplace(key);
    if (inserted) it->second = std::make_shared<Slot<V>>();
    count_cache_event(id, !inserted);
    if (was_hit) *was_hit = !inserted;
    slot = it->second;
  }
  // Compute outside the map lock: expensive work (transpilation, noise-model
  // construction) must not serialize unrelated cache lookups. call_once makes
  // concurrent requesters of the same key wait for one computation.
  std::call_once(slot->once,
                 [&] { slot->value = std::make_shared<const V>(make()); });
  return slot->value;
}

common::ThreadPool& ExecutionEngine::pool() {
  return owned_pool_ ? *owned_pool_ : common::ThreadPool::global();
}

ExecutionEngine::ExecutionEngine(EngineOptions options) : options_(options) {
  obs::init_from_env();
  QC_CHECK_MSG(options_.trajectory_block > 0,
               "EngineOptions::trajectory_block must be positive (it is the "
               "shots-per-work-block partition; use the default 128 if unsure)");
  if (options_.trajectory_block > kMaxTrajectoryBlock) {
    QC_LOG_WARN("exec",
                "EngineOptions::trajectory_block=%zu exceeds the ceiling %zu; "
                "clamping",
                options_.trajectory_block, kMaxTrajectoryBlock);
    options_.trajectory_block = kMaxTrajectoryBlock;
  }
  if (options_.num_threads > common::kMaxThreadPoolSize) {
    QC_LOG_WARN("exec",
                "EngineOptions::num_threads=%zu exceeds the ceiling %zu; "
                "clamping",
                options_.num_threads, common::kMaxThreadPoolSize);
    options_.num_threads = common::kMaxThreadPoolSize;
  }
  if (options_.num_threads > 0)
    owned_pool_ = std::make_unique<common::ThreadPool>(options_.num_threads);
}

ExecutionEngine::~ExecutionEngine() = default;

ExecutionEngine& ExecutionEngine::global() {
  static ExecutionEngine engine;
  return engine;
}

CacheStats ExecutionEngine::cache_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

CacheSnapshot ExecutionEngine::cache_stats_snapshot() const {
  CacheSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snap.stats = stats_;
    snap.transpile_entries = transpile_cache_.entries.size();
    snap.model_entries = model_cache_.entries.size();
    snap.compiled_entries = compiled_cache_.entries.size();
    snap.matrix_entries = matrix_cache_.entries.size();
  }
  struct Row {
    const char* name;
    std::size_t hits, misses, entries;
  };
  const Row rows[] = {
      {"transpile", snap.stats.transpile_hits, snap.stats.transpile_misses,
       snap.transpile_entries},
      {"model", snap.stats.model_hits, snap.stats.model_misses,
       snap.model_entries},
      {"compiled", snap.stats.compiled_hits, snap.stats.compiled_misses,
       snap.compiled_entries},
      {"matrix", snap.stats.matrix_hits, snap.stats.matrix_misses,
       snap.matrix_entries},
  };
  for (const Row& row : rows) {
    const std::string prefix = std::string("exec.engine.cache.") + row.name;
    obs::gauge(prefix + ".hits").set(static_cast<std::int64_t>(row.hits));
    obs::gauge(prefix + ".misses").set(static_cast<std::int64_t>(row.misses));
    obs::gauge(prefix + ".entries").set(static_cast<std::int64_t>(row.entries));
  }
  return snap;
}

void ExecutionEngine::clear_caches() {
  std::lock_guard<std::mutex> lock(mutex_);
  transpile_cache_ = {};
  model_cache_ = {};
  compiled_cache_ = {};
  matrix_cache_ = {};
  stats_ = {};
}

// ---- cache keys ------------------------------------------------------------

ExecutionEngine::TranspileKey ExecutionEngine::make_transpile_key(
    const RunRequest& request) const {
  TranspileKey key;
  key.circuit_fp = request.circuit.fingerprint();
  key.device_fp = request.config.device.fingerprint();
  if (request.config.initial_layout) {
    std::uint64_t h = 0xa1b2c3d4e5f60718ULL;
    for (int p : *request.config.initial_layout)
      h = common::hash_combine(h, static_cast<std::uint64_t>(p));
    key.layout_fp = h;
  }
  key.level = request.config.optimization_level;
  key.router = static_cast<int>(request.config.router);
  key.circuit_qubits = request.circuit.num_qubits();
  key.circuit_gates = request.circuit.size();
  key.device_qubits = request.config.device.num_qubits();
  key.device_edges = request.config.device.coupling.num_edges();
  return key;
}

ExecutionEngine::ModelKey ExecutionEngine::make_model_key(
    const RunRequest& request, const transpile::TranspileResult& tr) const {
  ModelKey key;
  key.device_fp = request.config.device.fingerprint();
  key.options_fp = request.config.noise_options.fingerprint();
  std::uint64_t h = 0x7c0ffee5deadbeefULL;
  for (int p : tr.active_physical)
    h = common::hash_combine(h, static_cast<std::uint64_t>(p));
  key.subset_fp = h;
  key.device_qubits = request.config.device.num_qubits();
  key.device_edges = request.config.device.coupling.num_edges();
  key.subset_size = tr.active_physical.size();
  return key;
}

// ---- cached pipeline stages ------------------------------------------------

std::shared_ptr<const transpile::TranspileResult> ExecutionEngine::transpile_cached(
    const RunRequest& request, bool* hit) {
  const TranspileKey key = make_transpile_key(request);
  return get_or_compute(transpile_cache_, CacheId::Transpile, key, hit, [&] {
    return transpile::transpile(request.circuit, request.config.device,
                                request.config.transpile_options());
  });
}

std::shared_ptr<const noise::NoiseModel> ExecutionEngine::model_cached(
    const RunRequest& request, const transpile::TranspileResult& tr, bool* hit) {
  const ModelKey key = make_model_key(request, tr);
  return get_or_compute(model_cache_, CacheId::Model, key, hit, [&] {
    const noise::DeviceProperties sub = tr.restricted_device(request.config.device);
    return noise::NoiseModel::from_device(sub, request.config.noise_options);
  });
}

linalg::Matrix ExecutionEngine::gate_matrix(const ir::Gate& gate) {
  MatrixKey key;
  key.kind = static_cast<int>(gate.kind);
  key.params.reserve(gate.params.size());
  for (double p : gate.params) key.params.push_back(std::bit_cast<std::uint64_t>(p));
  const auto m = get_or_compute(matrix_cache_, CacheId::Matrix, key, nullptr,
                                [&] { return gate.matrix(); });
  return *m;
}

std::shared_ptr<const sim::CompiledCircuit> ExecutionEngine::compiled_cached(
    const TranspileKey& tkey, const ModelKey& mkey,
    const transpile::TranspileResult& tr, const noise::NoiseModel& model,
    bool* hit) {
  const CompiledKey key{tkey, mkey};
  return get_or_compute(compiled_cache_, CacheId::Compiled, key, hit, [&] {
    sim::CompileOptions copts;
    copts.max_fuse_qubits = options_.max_fuse_qubits;
    return sim::compile_noisy_circuit(
        tr.circuit, model, [this](const ir::Gate& g) { return gate_matrix(g); },
        copts);
  });
}

std::shared_ptr<const sim::CompiledCircuit> ExecutionEngine::compiled_ideal_cached(
    const TranspileKey& tkey, const transpile::TranspileResult& tr, bool* hit) {
  const CompiledKey key{tkey, ModelKey{}, /*ideal=*/1};
  return get_or_compute(compiled_cache_, CacheId::Compiled, key, hit, [&] {
    const noise::NoiseModel model = noise::NoiseModel::ideal(tr.circuit.num_qubits());
    sim::CompileOptions copts;
    copts.max_fuse_qubits = options_.max_fuse_qubits;
    return sim::compile_noisy_circuit(
        tr.circuit, model, [this](const ir::Gate& g) { return gate_matrix(g); },
        copts);
  });
}

// ---- execution -------------------------------------------------------------

std::vector<double> ExecutionEngine::trajectory_probabilities(
    const sim::CompiledCircuit& compiled, std::size_t shots, std::uint64_t seed,
    const common::Deadline& deadline, const obs::TraceContext& parent,
    RunRecord& rec) {
  QC_CHECK(shots > 0);
  const std::size_t block = options_.trajectory_block;
  const std::size_t num_blocks = (shots + block - 1) / block;
  obs::Span span("exec.trajectories", parent);
  if (span.active()) {
    span.arg("shots", shots);
    span.arg("blocks", num_blocks);
  }
  static obs::Counter& shot_counter = obs::counter("sim.trajectory_shots");
  std::vector<std::uint64_t> counts(std::size_t{1} << compiled.num_qubits, 0);
  std::mutex merge_mutex;
  std::size_t completed_total = 0;
  // The block partition depends only on `trajectory_block`, and each shot
  // draws from its own counter-derived stream, so the merged integer counts
  // are bit-identical for every pool size and merge order. (A timed-out run
  // is the exception: which shots finish before expiry depends on thread
  // scheduling, so partial results are flagged, not reproducible.)
  const obs::TraceContext traj_ctx = span.context();  // pool threads parent here
  pool().parallel_for(0, num_blocks, [&](std::size_t b) {
    obs::Span block_span("exec.traj_block", traj_ctx);
    const std::size_t begin = b * block;
    const std::size_t end = std::min(shots, begin + block);
    if (block_span.active()) block_span.arg("shots", end - begin);
    std::size_t completed = 0;
    const auto local = sim::trajectory_counts_streamed(compiled, begin, end, seed,
                                                       deadline, &completed);
    std::lock_guard<std::mutex> lock(merge_mutex);
    completed_total += completed;
    for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += local[i];
  });
  shot_counter.add(completed_total);
  rec.completed_shots = completed_total;
  rec.timed_out = completed_total < shots;
  if (completed_total == 0) {
    // Nothing finished before expiry: uniform placeholder (flagged timed_out).
    return std::vector<double>(counts.size(), 1.0 / static_cast<double>(counts.size()));
  }
  return metrics::counts_to_distribution(counts);
}

RunResult ExecutionEngine::run(const RunRequest& request) {
  obs::Span run_span("exec.run", request.trace_parent, &timers().run);
  // Phase spans chain under exec.run; a request with a trace context (served
  // jobs) therefore exports transpile/model/compile/evolve as children of
  // the caller's trace rather than as disconnected top-level slices.
  const obs::TraceContext run_ctx = run_span.context();
  static obs::Counter& runs_counter = obs::counter("exec.runs");
  runs_counter.add(1);
  common::Stopwatch watch;
  // Per-request bound wins; otherwise the QAPPROX_DEADLINE_MS process default
  // (its countdown starts here, covering this run only).
  const common::Deadline deadline =
      request.deadline.bounded() ? request.deadline : common::Deadline::from_env();
  RunResult result;
  RunRecord& rec = result.record;
  rec.build_stamp = obs::build_info_summary();
  rec.trace_id = run_ctx.trace_id;

  std::shared_ptr<const transpile::TranspileResult> tr;
  {
    obs::Span span("exec.transpile", run_ctx, &timers().transpile);
    tr = transpile_cached(request, &rec.transpile_cache_hit);
    rec.transpiled_cx = tr->circuit.count(ir::GateKind::CX);
    rec.transpiled_depth = tr->circuit.depth();
    rec.added_swaps = tr->added_swaps;
    rec.initial_layout = tr->initial_layout;
    rec.active_physical = tr->active_physical;
    if (span.active()) {
      span.arg("cache_hit", rec.transpile_cache_hit);
      span.arg("cx", rec.transpiled_cx);
      span.arg("depth", rec.transpiled_depth);
      span.arg("swaps", rec.added_swaps);
    }
  }

  // Every engine runs the same cached, step-fused compiled program; they
  // differ only in how they evolve it.
  std::shared_ptr<const sim::CompiledCircuit> compiled;
  std::shared_ptr<const noise::NoiseModel> model;
  if (request.config.ideal) {
    rec.engine = "ideal";
    obs::Span span("exec.compile", run_ctx, &timers().compile);
    compiled = compiled_ideal_cached(make_transpile_key(request), *tr,
                                     &rec.compiled_cache_hit);
    if (span.active()) span.arg("cache_hit", rec.compiled_cache_hit);
  } else {
    {
      obs::Span span("exec.model", run_ctx, &timers().model);
      model = model_cached(request, *tr, &rec.noise_model_cache_hit);
      if (span.active()) span.arg("cache_hit", rec.noise_model_cache_hit);
    }
    obs::Span span("exec.compile", run_ctx, &timers().compile);
    compiled = compiled_cached(make_transpile_key(request),
                               make_model_key(request, *tr), *tr, *model,
                               &rec.compiled_cache_hit);
    if (span.active()) span.arg("cache_hit", rec.compiled_cache_hit);
  }
  rec.compiled_steps = compiled->steps.size();
  rec.source_gates = compiled->source_gates;
  rec.fused_gates = compiled->fused_gates;
  rec.fused_blocks_by_k = compiled->fused_blocks_by_k;
  rec.kernel_counts = compiled->kernel_counts;
  record_kernel_metrics(rec.kernel_counts);

  std::vector<double> probs;
  {
    obs::Span span("exec.evolve", run_ctx, &timers().evolve);
    if (request.config.ideal) {
      probs = sim::statevector_probabilities(*compiled, deadline, &rec.timed_out);
    } else if (request.config.use_trajectories) {
      rec.engine = "traj:" + model->device_name();
      rec.shots = request.config.shots;
      probs = trajectory_probabilities(*compiled, request.config.shots,
                                       request.config.seed, deadline,
                                       span.context(), rec);
    } else {
      rec.engine = "dm:" + model->device_name();
      probs = sim::density_matrix_probabilities(*compiled, deadline, &rec.timed_out);
    }
    if (span.active()) span.arg("engine", rec.engine);
  }
  result.probabilities = transpile::unpermute_distribution(probs, tr->wire_of_virtual);
  if (rec.timed_out) {
    result.status = RunStatus::TimedOut;
    static obs::Counter& timeouts = obs::counter("exec.runs_timed_out");
    timeouts.add(1);
  }
  rec.wall_ms = watch.millis();
  if (run_span.active()) {
    run_span.arg("engine", rec.engine);
    run_span.arg("compiled_steps", rec.compiled_steps);
    run_span.arg("status", run_status_name(result.status));
  }
  return result;
}

const char* run_status_name(RunStatus status) {
  switch (status) {
    case RunStatus::Ok: return "ok";
    case RunStatus::TimedOut: return "timed_out";
    case RunStatus::Failed: return "failed";
  }
  return "unknown";
}

namespace {

/// A RunStatus::Failed placeholder: uniform distribution over the request
/// circuit's outcome space (so downstream index math stays in bounds) plus
/// the error recorded for annotation.
RunResult failed_result(const RunRequest& request, const common::Error& e) {
  RunResult result;
  result.status = RunStatus::Failed;
  result.record.engine = "failed";
  result.record.error = std::string(e.kind()) + ": " + e.what();
  result.record.build_stamp = obs::build_info_summary();
  const std::size_t dim = std::size_t{1} << request.circuit.num_qubits();
  result.probabilities.assign(dim, 1.0 / static_cast<double>(dim));
  return result;
}

}  // namespace

std::vector<RunResult> ExecutionEngine::run_batch(
    const std::vector<RunRequest>& requests) {
  obs::Span span("exec.run_batch");
  if (span.active()) span.arg("requests", requests.size());
  static obs::Counter& failed_counter = obs::counter("exec.runs_failed");
  std::vector<RunResult> results(requests.size());
  // Each task owns exactly one result slot; a throwing task is captured in
  // place as a Failed result, so one bad request can never tear down the pool
  // or drop its siblings' outputs.
  pool().parallel_for(0, requests.size(), [&](std::size_t i) {
    try {
      if (common::faults::enabled()) {
        const std::uint64_t stream =
            requests[i].fault_stream == RunRequest::kFaultStreamFromBatchIndex
                ? i
                : requests[i].fault_stream;
        common::faults::maybe_delay(stream);
        if (common::faults::fires(common::faults::Site::WorkerThrow, stream))
          throw common::SimulationError("injected worker fault (stream " +
                                        std::to_string(stream) + ")");
      }
      results[i] = run(requests[i]);
    } catch (const common::Error& e) {
      results[i] = failed_result(requests[i], e);
      failed_counter.add(1);
      QC_LOG_ERROR("exec", "run_batch request %zu failed: %s", i, e.what());
    } catch (const std::exception& e) {
      results[i] = failed_result(requests[i], common::Error(e.what()));
      failed_counter.add(1);
      QC_LOG_ERROR("exec", "run_batch request %zu failed: %s", i, e.what());
    }
  });
  // Refresh the exec.engine.cache.* gauges once per batch, so metrics
  // exports from any batch-driving binary carry per-engine cache state
  // without an explicit snapshot call.
  (void)cache_stats_snapshot();
  return results;
}

}  // namespace qc::exec
