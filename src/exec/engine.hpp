// ExecutionEngine: the unified, cached, batched execution path.
//
// Every consumer of the pipeline (experiment drivers, figure benchmarks,
// examples, tests) previously hand-rolled the same four steps — transpile,
// restrict the device, build a NoiseModel, simulate — so scatter studies
// re-transpiled identical circuits and rebuilt identical noise models dozens
// of times per figure. The engine owns session-level caches keyed by content
// fingerprints and computes each entry exactly once, even under concurrent
// batch execution:
//
//  * transpile cache  — (circuit, device, layout, level, router)
//                       -> TranspileResult
//  * noise-model cache — (device, noise options, active-physical subset)
//                       -> NoiseModel over the restricted device
//  * compiled cache   — (transpile key, model key, ideal?) ->
//                       sim::CompiledCircuit, the precompiled (and step-fused)
//                       program shared by every engine: state-vector, density
//                       matrix, and trajectories
//  * gate-matrix cache — (gate kind, params) -> linalg::Matrix
//
// run_batch schedules requests over a ThreadPool; the trajectory engine
// additionally fans shots out in fixed-size blocks with counter-based
// per-shot RNG streams (common::derive_stream_seed), so results are
// bit-identical for every thread count, including QAPPROX_THREADS=1.
//
// The engine is fully instrumented through src/obs: every phase (transpile /
// noise model / compile / evolve) runs under a Span with a duration
// histogram, cache hits and misses feed the process-wide metrics registry
// (exec.cache.*) as well as the per-engine CacheStats, and each run's kernel
// dispatch counts are mirrored into sim.kernel.* counters. All of it is
// zero-overhead unless QAPPROX_TRACE / QAPPROX_METRICS are set.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/thread_pool.hpp"
#include "exec/request.hpp"
#include "linalg/matrix.hpp"
#include "noise/noise_model.hpp"
#include "sim/compiled.hpp"
#include "transpile/pipeline.hpp"

namespace qc::exec {

struct EngineOptions {
  /// 0: schedule on common::ThreadPool::global(); otherwise the engine owns a
  /// private pool of exactly this many workers (lets tests pin thread counts
  /// without environment variables). Values above kMaxThreadPoolSize are
  /// clamped with a warning.
  std::size_t num_threads = 0;
  /// Shots per trajectory work block. The partition is fixed by this value,
  /// not by the thread count, so per-block counts merge to identical totals
  /// on any pool size. Must be positive (ContractError otherwise); values
  /// above kMaxTrajectoryBlock are clamped with a warning.
  std::size_t trajectory_block = 128;
  /// Largest qubit union gate fusion may grow a compiled step to, forwarded
  /// to sim::CompileOptions::max_fuse_qubits (clamped there to [1, 4]).
  /// 2 restores the pre-k<=4 fusion behaviour for A/B comparisons.
  int max_fuse_qubits = 4;
};

/// Ceiling on EngineOptions::trajectory_block: a block far beyond any real
/// shot budget defeats parallelism without changing results, so it is a
/// config mistake, not a tuning choice.
inline constexpr std::size_t kMaxTrajectoryBlock = 1u << 20;

class ExecutionEngine {
 public:
  explicit ExecutionEngine(EngineOptions options = {});
  ~ExecutionEngine();

  ExecutionEngine(const ExecutionEngine&) = delete;
  ExecutionEngine& operator=(const ExecutionEngine&) = delete;

  /// Executes one request through the cached pipeline. The request's deadline
  /// (or the QAPPROX_DEADLINE_MS default) is polled during evolution; on
  /// expiry the result carries a best-effort partial distribution with
  /// status == RunStatus::TimedOut. Throws (e.g. SimulationError from the
  /// norm-drift guard) only for errors with no meaningful partial result.
  RunResult run(const RunRequest& request);

  /// Executes a batch concurrently; results are positionally aligned with
  /// `requests` and identical to running each request serially. A request
  /// that throws is captured as a RunStatus::Failed result (uniform
  /// placeholder distribution, error text in its RunRecord) — sibling
  /// requests, the pool, and the engine are unaffected.
  std::vector<RunResult> run_batch(const std::vector<RunRequest>& requests);

  /// Snapshot of this engine's cache counters. Process-wide aggregates (all
  /// engines) live in the obs metrics registry under exec.cache.*.
  CacheStats cache_stats() const;

  /// Thread-safe point-in-time view of this engine's caches: the hit/miss
  /// counters plus the current entry count of each cache. Also publishes the
  /// numbers as process-wide gauges (exec.engine.cache.<cache>.{hits,misses,
  /// entries}) so they reach the QAPPROX_METRICS export and the serve
  /// `stats` reply; with several engines alive the gauges reflect the last
  /// snapshotted one (per-engine exactness stays in the returned struct).
  CacheSnapshot cache_stats_snapshot() const;

  /// Drops every cached entry and zeroes this engine's counters (the global
  /// exec.cache.* metrics are monotonic and unaffected).
  void clear_caches();

  /// Process-wide shared engine (used by the approx drivers and benchmarks
  /// unless a caller supplies its own).
  static ExecutionEngine& global();

 private:
  // Keys pair each 64-bit content fingerprint with cheap exact structural
  // discriminators (qubit/gate/edge counts), so a fingerprint collision would
  // additionally have to match structure before it could alias an entry.
  struct TranspileKey {
    std::uint64_t circuit_fp = 0;
    std::uint64_t device_fp = 0;
    std::uint64_t layout_fp = 0;  // 0 when no initial layout is forced
    int level = 0;
    int router = 0;
    int circuit_qubits = 0;
    std::uint64_t circuit_gates = 0;
    int device_qubits = 0;
    std::uint64_t device_edges = 0;
    auto operator<=>(const TranspileKey&) const = default;
  };
  struct ModelKey {
    std::uint64_t device_fp = 0;   // the *full* device
    std::uint64_t options_fp = 0;
    std::uint64_t subset_fp = 0;   // active-physical subset
    int device_qubits = 0;
    std::uint64_t device_edges = 0;
    std::uint64_t subset_size = 0;
    auto operator<=>(const ModelKey&) const = default;
  };
  struct CompiledKey {
    TranspileKey transpile;
    ModelKey model;
    int ideal = 0;  // 1: compiled against NoiseModel::ideal (model is blank)
    auto operator<=>(const CompiledKey&) const = default;
  };
  struct MatrixKey {
    int kind = 0;
    std::vector<std::uint64_t> params;  // bit patterns
    auto operator<=>(const MatrixKey&) const = default;
  };

  /// A cache slot computed exactly once via std::call_once; concurrent
  /// requesters of the same key block on the first computation instead of
  /// duplicating it.
  template <typename V>
  struct Slot {
    std::once_flag once;
    std::shared_ptr<const V> value;
  };

  template <typename K, typename V>
  struct OnceCache {
    std::map<K, std::shared_ptr<Slot<V>>> entries;
  };

  /// Which session cache an event belongs to, for counter routing.
  enum class CacheId { Transpile, Model, Compiled, Matrix };

  /// Finds-or-creates the slot for `key` (counting a hit or a miss against
  /// both this engine's CacheStats and the process-wide metrics registry),
  /// then computes the value exactly once with `make`.
  template <typename K, typename V, typename Make>
  std::shared_ptr<const V> get_or_compute(OnceCache<K, V>& cache, CacheId id,
                                          const K& key, bool* was_hit,
                                          Make&& make);

  /// Tallies one lookup. Requires mutex_ to be held.
  void count_cache_event(CacheId id, bool hit);

  common::ThreadPool& pool();

  std::shared_ptr<const transpile::TranspileResult> transpile_cached(
      const RunRequest& request, bool* hit);
  std::shared_ptr<const noise::NoiseModel> model_cached(
      const RunRequest& request, const transpile::TranspileResult& tr, bool* hit);
  std::shared_ptr<const sim::CompiledCircuit> compiled_cached(
      const TranspileKey& tkey, const ModelKey& mkey,
      const transpile::TranspileResult& tr, const noise::NoiseModel& model,
      bool* hit);
  std::shared_ptr<const sim::CompiledCircuit> compiled_ideal_cached(
      const TranspileKey& tkey, const transpile::TranspileResult& tr, bool* hit);
  linalg::Matrix gate_matrix(const ir::Gate& gate);

  TranspileKey make_transpile_key(const RunRequest& request) const;
  ModelKey make_model_key(const RunRequest& request,
                          const transpile::TranspileResult& tr) const;

  std::vector<double> trajectory_probabilities(const sim::CompiledCircuit& compiled,
                                               std::size_t shots,
                                               std::uint64_t seed,
                                               const common::Deadline& deadline,
                                               const obs::TraceContext& parent,
                                               RunRecord& rec);

  EngineOptions options_;
  std::unique_ptr<common::ThreadPool> owned_pool_;

  mutable std::mutex mutex_;  // guards the four caches and stats_
  CacheStats stats_;
  OnceCache<TranspileKey, transpile::TranspileResult> transpile_cache_;
  OnceCache<ModelKey, noise::NoiseModel> model_cache_;
  OnceCache<CompiledKey, sim::CompiledCircuit> compiled_cache_;
  OnceCache<MatrixKey, linalg::Matrix> matrix_cache_;
};

}  // namespace qc::exec
