// Execution requests and run records.
//
// A RunRequest pairs a logical circuit with an ExecutionConfig describing how
// it reaches "hardware" (device, transpilation level, noise options, engine
// choice, shots, seed). The ExecutionEngine turns each request into a
// RunResult: the outcome distribution in the circuit's own virtual bit order
// plus a RunRecord documenting what actually ran — transpiled gate counts,
// layout, engine, cache behaviour, wall time — so experiment drivers and
// benchmark binaries can report provenance without re-deriving it.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/deadline.hpp"
#include "ir/circuit.hpp"
#include "linalg/kernels.hpp"
#include "noise/device.hpp"
#include "noise/noise_model.hpp"
#include "obs/trace.hpp"
#include "transpile/pipeline.hpp"

namespace qc::exec {

/// How a circuit reaches "hardware".
struct ExecutionConfig {
  noise::DeviceProperties device;
  noise::NoiseModelOptions noise_options;  // set hardware extras / sweeps here
  /// Skip all noise (the "noise free reference" runs).
  bool ideal = false;
  int optimization_level = 1;
  std::optional<transpile::Layout> initial_layout;
  /// SWAP insertion strategy (see bench_ablation_routers).
  transpile::TranspileOptions::Router router =
      transpile::TranspileOptions::Router::Greedy;
  /// true: shot-sampled trajectory engine (hardware realism); false: exact
  /// density-matrix engine (noise-model simulation).
  bool use_trajectories = false;
  std::size_t shots = 8192;
  std::uint64_t seed = 11;

  /// Simulator run under a catalog device's noise model (the paper's
  /// "<device> noise model" setting: optimization level 1, DM engine).
  static ExecutionConfig simulator(const noise::DeviceProperties& device);
  /// Hardware-mode run (the paper's "<device> physical machine" setting:
  /// optimization level 3, trajectory engine, surplus noise on).
  static ExecutionConfig hardware(const noise::DeviceProperties& device);
  /// Noise-free reference execution on the same device topology.
  static ExecutionConfig noise_free(const noise::DeviceProperties& device);

  /// Transpile options implied by this config.
  transpile::TranspileOptions transpile_options() const;
};

/// One circuit execution job.
struct RunRequest {
  ir::QuantumCircuit circuit;
  ExecutionConfig config;
  /// Per-request execution bound (time limit and/or cancel token). Unbounded
  /// requests fall back to the process default from QAPPROX_DEADLINE_MS.
  common::Deadline deadline;
  /// Fault-injection stream id (QAPPROX_FAULTS); the sentinel means "use the
  /// batch index". Batch drivers get per-slot variety for free, but a
  /// multiplexer submitting single-element batches (the serve layer) must
  /// set a per-job stream — otherwise every job shares stream 0 and a
  /// probabilistic fault spec degenerates to all-or-nothing.
  static constexpr std::uint64_t kFaultStreamFromBatchIndex = ~0ull;
  std::uint64_t fault_stream = kFaultStreamFromBatchIndex;
  /// Trace parentage: when valid, the engine's exec.run span (and every
  /// phase span under it, down to trajectory blocks on pool threads) joins
  /// the caller's trace instead of starting an orphan — this is how a served
  /// job's admission, queue-wait, and engine phases export as one connected
  /// trace. Invalid (the default) keeps the pre-existing unparented spans.
  obs::TraceContext trace_parent;
};

/// How a request finished. TimedOut results still carry a best-effort
/// distribution (completed trajectory shots, or the partially evolved exact
/// state); Failed results carry a uniform placeholder plus the error text in
/// RunRecord::error.
enum class RunStatus { Ok = 0, TimedOut = 1, Failed = 2 };

const char* run_status_name(RunStatus status);

/// Provenance of one execution: what the transpiler produced, which engine
/// ran it, and which session caches were warm.
struct RunRecord {
  std::string engine;  // "ideal", "dm:<device>", "traj:<device>"
  std::size_t transpiled_cx = 0;
  std::size_t transpiled_depth = 0;
  std::size_t added_swaps = 0;
  transpile::Layout initial_layout;     // virtual -> physical
  std::vector<int> active_physical;     // physical ids backing compact wires
  std::size_t shots = 0;                // 0 for exact engines
  /// Steps in the compiled program actually executed. Fusion merges adjacent
  /// noise-free gates, so this is usually below the transpiled gate count:
  /// compiled_steps == source_gates - fused_gates.
  std::size_t compiled_steps = 0;
  /// Unitary gates in the transpiled circuit before fusion.
  std::size_t source_gates = 0;
  /// Source gates merged into a neighbouring step by k<=4 fusion.
  std::size_t fused_gates = 0;
  /// Fused-block tally by final arity: index k in [1, 4] counts compiled
  /// steps on k qubits built from >= 2 source gates (index 0 unused).
  std::array<std::size_t, 5> fused_blocks_by_k{};
  /// Which specialized gate kernels the program's steps dispatch to.
  linalg::KernelCounts kernel_counts;
  bool transpile_cache_hit = false;
  bool noise_model_cache_hit = false;
  bool compiled_cache_hit = false;      // compiled-program cache (all engines)
  double wall_ms = 0.0;
  /// Which binary produced this record (obs::build_info_summary(): git SHA,
  /// compiler, build type, native/flags) — lets archived results name the
  /// exact build they came from.
  std::string build_stamp;
  /// True when the run's deadline expired and `probabilities` is a flagged
  /// partial result rather than the full computation.
  bool timed_out = false;
  /// "<kind>: <what>" of the error that failed this run ("" on success).
  std::string error;
  /// Trajectory engine only: shots actually completed before the deadline
  /// (== `shots` on an untimed run).
  std::size_t completed_shots = 0;
  /// Trace this run's spans were recorded under (0 when the request carried
  /// no trace context) — the key for per-trace extraction and tail sampling.
  std::uint64_t trace_id = 0;
};

/// Outcome distribution (virtual bit order, normalized) plus its provenance.
struct RunResult {
  std::vector<double> probabilities;
  RunRecord record;
  RunStatus status = RunStatus::Ok;
  bool ok() const { return status == RunStatus::Ok; }
};

/// Aggregate hit/miss counters across an engine's session caches plus the
/// current entry counts (CacheStats alone says nothing about cache *size*,
/// which the serve stats endpoint and capacity planning need).
struct CacheSnapshot;

/// Aggregate hit/miss counters across an engine's session caches.
struct CacheStats {
  std::size_t transpile_hits = 0, transpile_misses = 0;
  std::size_t model_hits = 0, model_misses = 0;
  std::size_t compiled_hits = 0, compiled_misses = 0;
  std::size_t matrix_hits = 0, matrix_misses = 0;

  static double rate(std::size_t hits, std::size_t misses) {
    const std::size_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

struct CacheSnapshot {
  CacheStats stats;
  std::size_t transpile_entries = 0;
  std::size_t model_entries = 0;
  std::size_t compiled_entries = 0;
  std::size_t matrix_entries = 0;
};

}  // namespace qc::exec
