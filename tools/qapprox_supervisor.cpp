// Restart-with-backoff supervisor for the qapprox server (or any child).
//
//   qapprox_supervisor [--pidfile=PATH] [--max-restarts=N] [--stable-ms=N]
//                      [--] child-command [child-args...]
//
// Everything after "--" is the child's command line; with no "--" the
// supervisor runs the qapprox_serve binary next to itself. The child is
// forked/exec'd and respawned whenever it dies dirty (non-zero exit or a
// signal — a chaos harness SIGKILL included), with jittered exponential
// backoff between spawns; a child that stays up past --stable-ms (default
// 5000) resets the backoff, so a crash loop slows down but an occasional
// crash restarts promptly. A clean exit 0 (wire "shutdown") ends
// supervision with exit 0. --max-restarts (default: unlimited) bounds the
// total respawns — past it the supervisor gives up with exit 1, which is
// what CI wants from a server that cannot hold its socket.
//
// --pidfile is rewritten (atomically) after every spawn with the child's
// current pid: the chaos harness re-reads it each kill cycle to aim its
// SIGKILL at the live incarnation, never a recycled pid. SIGTERM/SIGINT to
// the supervisor forward to the child, wait for it, and exit cleanly.
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <sys/types.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/backoff.hpp"
#include "common/cli.hpp"
#include "common/io.hpp"

namespace {

volatile sig_atomic_t g_shutdown = 0;
volatile sig_atomic_t g_child = -1;

void handle_signal(int sig) {
  g_shutdown = 1;
  const pid_t child = g_child;
  if (child > 0) ::kill(child, sig);
}

std::string sibling_binary(const char* argv0, const char* name) {
  std::string path = argv0;
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string(name)
                                    : path.substr(0, slash + 1) + name;
}

}  // namespace

static int run(int argc, char** argv) {
  using namespace qc;
  int split = argc;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--") == 0) {
      split = i;
      break;
    }
  common::CliArgs args(split, argv);
  const std::string pidfile = args.get("pidfile", "");
  const int max_restarts = args.get_int("max-restarts", -1);  // -1 = unlimited
  const double stable_ms = args.get_double("stable-ms", 5000.0);

  std::string default_child;  // keeps the c_str alive across iterations
  std::vector<char*> child_argv;
  for (int i = split + 1; i < argc; ++i) child_argv.push_back(argv[i]);
  if (child_argv.empty()) {
    default_child = sibling_binary(argv[0], "qapprox_serve");
    child_argv.push_back(default_child.data());
  }
  child_argv.push_back(nullptr);

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  common::BackoffOptions bo;
  bo.initial_ms = 100.0;
  bo.max_ms = 5000.0;
  common::Backoff backoff(bo);
  int restarts = 0;
  while (true) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::fprintf(stderr, "qapprox_supervisor: fork failed: %s\n",
                   std::strerror(errno));
      return 1;
    }
    if (pid == 0) {
      ::execvp(child_argv[0], child_argv.data());
      std::fprintf(stderr, "qapprox_supervisor: exec(%s) failed: %s\n",
                   child_argv[0], std::strerror(errno));
      ::_exit(127);
    }
    g_child = pid;
    if (!pidfile.empty()) {
      try {
        common::atomic_write_file(pidfile, std::to_string(pid) + "\n");
      } catch (const std::exception& e) {
        std::fprintf(stderr, "qapprox_supervisor: pidfile write failed: %s\n",
                     e.what());
      }
    }
    std::fprintf(stderr, "qapprox_supervisor: spawned %s as pid %d\n",
                 child_argv[0], static_cast<int>(pid));
    const auto spawned_at = std::chrono::steady_clock::now();

    int status = 0;
    while (::waitpid(pid, &status, 0) < 0) {
      if (errno == EINTR) continue;  // signal handler forwarded, keep waiting
      std::fprintf(stderr, "qapprox_supervisor: waitpid failed: %s\n",
                   std::strerror(errno));
      return 1;
    }
    g_child = -1;
    const double uptime_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - spawned_at)
                                 .count();

    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      std::fprintf(stderr, "qapprox_supervisor: child exited cleanly\n");
      return 0;
    }
    if (g_shutdown) {
      // We asked it to stop; however it died, this is our exit too.
      std::fprintf(stderr, "qapprox_supervisor: shutdown requested\n");
      return 0;
    }
    if (WIFSIGNALED(status))
      std::fprintf(stderr,
                   "qapprox_supervisor: child killed by signal %d after "
                   "%.0f ms\n",
                   WTERMSIG(status), uptime_ms);
    else
      std::fprintf(stderr,
                   "qapprox_supervisor: child exited %d after %.0f ms\n",
                   WIFEXITED(status) ? WEXITSTATUS(status) : -1, uptime_ms);

    if (uptime_ms > stable_ms) backoff.reset();
    ++restarts;
    if (max_restarts >= 0 && restarts > max_restarts) {
      std::fprintf(stderr, "qapprox_supervisor: gave up after %d restarts\n",
                   restarts - 1);
      return 1;
    }
    const double delay_ms = backoff.next_ms();
    std::fprintf(stderr, "qapprox_supervisor: restart %d in %.0f ms\n",
                 restarts, delay_ms);
    // Sleep in small slices so a shutdown signal during backoff is honored
    // promptly instead of spawning one last doomed child.
    const auto resume_at =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(delay_ms));
    while (!g_shutdown && std::chrono::steady_clock::now() < resume_at)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    if (g_shutdown) return 0;
  }
}

int main(int argc, char** argv) { return qc::common::run_main(argc, argv, run); }
