// qapprox_top: a live terminal dashboard for a running qapprox server.
//
// Polls the wire `metrics` request (one frame per refresh — the server
// answers it inline, never queued behind jobs) and renders the SLO view an
// operator actually watches during a soak: per-kind and per-tenant job
// rates with rolling p50/p95/p99 latency, the queue-wait vs execution
// breakdown, live queue depth, and engine/synthesis cache hit ratios.
// Curses-free by design: a plain ANSI home-and-redraw loop, so it works in
// any terminal, under `watch`, through ssh, and inside CI logs (--once).
//
//   qapprox_top [--socket=PATH]      server socket (default: env
//                                    QAPPROX_SERVE_SOCKET or /tmp/qapprox.sock)
//               [--interval-ms=N]    refresh period       (default 1000)
//               [--iterations=N]     stop after N frames  (default 0 = forever)
//               [--once]             one frame, no screen clearing
//               [--no-clear]         append frames instead of redrawing
//
// Exit is nonzero only when the first connection attempt fails; a server
// that goes away mid-session keeps the last frame on screen and retries.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/driver.hpp"
#include "common/json.hpp"
#include "serve/client.hpp"

namespace {

using qc::common::json::Value;

struct RollingRow {
  double rate = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  std::uint64_t count = 0;
};

/// Pulls one rolling-histogram summary out of the metrics tree (values in
/// nanoseconds as exported); absent names yield a zero row.
RollingRow rolling_row(const Value& rolling, const std::string& name) {
  RollingRow row;
  const Value* entry = rolling.find(name);
  if (entry == nullptr || !entry->is_object()) return row;
  row.rate = entry->get_number("rate", 0.0);
  row.p50 = entry->get_number("p50", 0.0);
  row.p95 = entry->get_number("p95", 0.0);
  row.p99 = entry->get_number("p99", 0.0);
  row.count = static_cast<std::uint64_t>(entry->get_number("count", 0.0));
  return row;
}

double counter_value(const Value& counters, const std::string& name) {
  return counters.get_number(name, 0.0);
}

double hit_ratio(const Value& counters, const std::string& base) {
  const double hits = counter_value(counters, base + ".hits");
  const double misses = counter_value(counters, base + ".misses");
  const double total = hits + misses;
  return total > 0.0 ? 100.0 * hits / total : 0.0;
}

double ms(double ns) { return ns / 1e6; }

void print_latency_line(const char* label, const RollingRow& lat,
                        const RollingRow& queue_wait, const RollingRow& exec) {
  std::printf("  %-14s %8.1f %9.2f %9.2f %9.2f %11.2f %9.2f\n", label,
              lat.rate, ms(lat.p50), ms(lat.p95), ms(lat.p99),
              ms(queue_wait.p95), ms(exec.p95));
}

/// Rolling names are flat ("serve.job.latency_ns.tenant.team-a"); collect
/// the label suffixes present for one marker (".tenant." / ".kind.").
std::vector<std::string> label_values(const Value& rolling,
                                      const std::string& marker) {
  std::vector<std::string> out;
  if (!rolling.is_object()) return out;
  const std::string prefix = "serve.job.latency_ns" + marker;
  for (const auto& [name, entry] : rolling.members()) {
    (void)entry;
    if (name.rfind(prefix, 0) == 0) out.push_back(name.substr(prefix.size()));
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool render_frame(qc::serve::Client& client, std::uint64_t frame_id) {
  Value req = Value::object();
  req.set("id", frame_id);
  req.set("type", "metrics");
  Value params = Value::object();
  params.set("format", "json");
  req.set("params", std::move(params));

  Value reply;
  try {
    reply = client.call(req);
  } catch (const std::exception& e) {
    std::printf("[poll failed: %s]\n", e.what());
    return false;
  }
  const Value* result = reply.find("result");
  if (result == nullptr || reply.get_string("status", "") != "ok") {
    std::printf("[unexpected reply: %s]\n", reply.dump().c_str());
    return false;
  }

  const double uptime_s = result->get_number("uptime_ms", 0.0) / 1000.0;
  std::size_t queued = 0, running = 0, tenants_active = 0;
  if (const Value* queue = result->find("queue")) {
    queued = static_cast<std::size_t>(queue->get_number("queued", 0.0));
    running = static_cast<std::size_t>(queue->get_number("running", 0.0));
    tenants_active =
        static_cast<std::size_t>(queue->get_number("tenants", 0.0));
  }
  std::printf("qapprox_top  uptime %8.1fs   queue %zu waiting / %zu running "
              "/ %zu active tenants\n",
              uptime_s, queued, running, tenants_active);

  static const Value empty = Value::object();
  const Value* metrics = result->find("metrics");
  const Value* rolling_ptr =
      metrics != nullptr ? metrics->find("rolling") : nullptr;
  const Value* counters_ptr =
      metrics != nullptr ? metrics->find("counters") : nullptr;
  const Value& rolling = rolling_ptr != nullptr ? *rolling_ptr : empty;
  const Value& counters = counters_ptr != nullptr ? *counters_ptr : empty;

  const RollingRow depth = rolling_row(rolling, "serve.queue.depth.window");
  std::printf("queue depth (window): p50 %.0f  p95 %.0f  p99 %.0f  "
              "(%llu submits)\n",
              depth.p50, depth.p95, depth.p99,
              static_cast<unsigned long long>(depth.count));

  std::printf("\n  %-14s %8s %9s %9s %9s %11s %9s\n", "jobs", "rate/s",
              "p50 ms", "p95 ms", "p99 ms", "qwait p95", "exec p95");
  const auto section = [&](const char* label, const std::string& suffix) {
    print_latency_line(
        label, rolling_row(rolling, "serve.job.latency_ns" + suffix),
        rolling_row(rolling, "serve.job.queue_wait_ns" + suffix),
        rolling_row(rolling, "serve.job.exec_ns" + suffix));
  };
  section("all", "");
  for (const std::string& kind : label_values(rolling, ".kind."))
    section(kind.c_str(), ".kind." + kind);
  const std::vector<std::string> tenants = label_values(rolling, ".tenant.");
  if (!tenants.empty()) {
    std::printf("  %-14s\n", "by tenant:");
    for (const std::string& t : tenants)
      section(("  " + t).c_str(), ".tenant." + t);
  }

  std::printf("\ncache hit%%: transpile %5.1f  model %5.1f  compiled %5.1f  "
              "synth %5.1f\n",
              hit_ratio(counters, "exec.cache.transpile"),
              hit_ratio(counters, "exec.cache.model"),
              hit_ratio(counters, "exec.cache.compiled"),
              hit_ratio(counters, "synth.cache"));
  std::printf("jobs since boot: %.0f replies, %.0f scheduler rejections\n",
              counter_value(counters, "serve.scheduler.completed"),
              counter_value(counters, "serve.scheduler.rejected"));
  return true;
}

}  // namespace

static int run(int argc, char** argv) {
  using namespace qc;
  common::driver::DriverContext ctx(argc, argv, "qapprox_top");

  std::string socket_path = ctx.args.get("socket", "");
  if (socket_path.empty()) {
    const char* env = std::getenv("QAPPROX_SERVE_SOCKET");
    socket_path = (env != nullptr && *env != '\0') ? env : "/tmp/qapprox.sock";
  }
  const bool once = ctx.args.get_bool("once", false);
  const bool clear = !once && !ctx.args.get_bool("no-clear", false);
  const int interval_ms = std::max(50, ctx.args.get_int("interval-ms", 1000));
  const int iterations = once ? 1 : ctx.args.get_int("iterations", 0);

  serve::Client client;
  try {
    client = serve::Client::connect(socket_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qapprox_top: cannot connect to %s: %s\n",
                 socket_path.c_str(), e.what());
    return 1;
  }

  std::uint64_t frame = 0;
  while (iterations <= 0 || frame < static_cast<std::uint64_t>(iterations)) {
    if (clear) std::printf("\x1b[2J\x1b[H");  // home + clear: steady redraw
    std::printf("[%s  refresh %d ms]\n", socket_path.c_str(), interval_ms);
    if (!render_frame(client, ++frame)) {
      // Server restarted or went away: reconnect on the next tick rather
      // than dying mid-soak.
      client.close();
      try {
        client = serve::Client::connect(socket_path);
      } catch (const std::exception&) {
      }
    }
    std::fflush(stdout);
    if (iterations > 0 && frame >= static_cast<std::uint64_t>(iterations)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return 0;
}

int main(int argc, char** argv) { return qc::common::run_main(argc, argv, run); }
