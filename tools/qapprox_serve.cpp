// The qapprox server daemon.
//
// Binds the approximation service to a local socket and runs until a wire
// "shutdown" request or SIGINT/SIGTERM. Configuration is flags-over-env:
//
//   qapprox_serve [--socket=PATH] [--workers=N] [--queue-cap=N]
//                 [--cache-dir=DIR] [--trace-dir=DIR] [--journal-dir=DIR]
//                 [--metrics-period-ms=N] [--version]
//
//   QAPPROX_SERVE_SOCKET       socket path        (default /tmp/qapprox.sock)
//   QAPPROX_SERVE_WORKERS      worker threads     (default 4)
//   QAPPROX_SERVE_QUEUE_CAP    total queued jobs  (default 256)
//   QAPPROX_SYNTH_CACHE_DIR    synthesis-cache snapshot dir (default: off)
//   QAPPROX_TRACE_DIR          tail-sample capture dir      (default: off)
//   QAPPROX_METRICS_PERIOD_MS  periodic metrics snapshots to the
//                              QAPPROX_METRICS path (+ .prom) (default: off)
//   QAPPROX_METRICS_WINDOW_MS  rolling SLO window span       (default 1000)
//   QAPPROX_JOURNAL_DIR        crash-durable job journal dir (default: off)
//   QAPPROX_REPLAY_CACHE       reply-replay cache entries    (default 4096)
//   QAPPROX_WRITE_BUDGET       per-connection write-queue bytes (default 8 MiB)
//   QAPPROX_WATCHDOG_MS        hung-job scan period; 0 = off (default 250)
//   QAPPROX_WATCHDOG_GRACE     budget multiplier before a strike (default 4)
//
// For crash durability run it under tools/qapprox_supervisor (restart with
// backoff + pidfile) and point QAPPROX_JOURNAL_DIR at a scratch directory:
// a SIGKILL'd server replays its journal on the next spawn and loses no
// acknowledged job.
//
// On exit the daemon prints its stats payload (the same JSON a "stats"
// request returns) so soak scripts can assert on counters without keeping a
// client open through shutdown. A SIGTERM/SIGINT drain also flushes the
// armed QAPPROX_TRACE / QAPPROX_METRICS exports and the pending tail-sample
// window before the process exits — a killed soak still leaves artifacts.
#include <csignal>
#include <cstdio>

#include "common/cli.hpp"
#include "common/driver.hpp"
#include "serve/server.hpp"

namespace {

qc::serve::QapproxServer* g_server = nullptr;

void handle_signal(int) {
  // request_shutdown is flag + condvar; teardown happens on the main thread.
  if (g_server != nullptr) g_server->request_shutdown();
}

}  // namespace

static int run(int argc, char** argv) {
  using namespace qc;
  common::driver::DriverContext ctx(argc, argv, "qapprox_serve");

  serve::ServerOptions opts = serve::ServerOptions::from_env();
  opts.socket_path = ctx.args.get("socket", opts.socket_path);
  opts.scheduler.workers = static_cast<std::size_t>(ctx.args.get_int(
      "workers", static_cast<int>(opts.scheduler.workers)));
  opts.scheduler.queue_cap = static_cast<std::size_t>(ctx.args.get_int(
      "queue-cap", static_cast<int>(opts.scheduler.queue_cap)));
  opts.synth_cache_dir = ctx.args.get("cache-dir", opts.synth_cache_dir);
  opts.trace_dir = ctx.args.get("trace-dir", opts.trace_dir);
  opts.journal_dir = ctx.args.get("journal-dir", opts.journal_dir);
  opts.metrics_period_ms =
      ctx.args.get_double("metrics-period-ms", opts.metrics_period_ms);

  serve::QapproxServer server(opts);
  g_server = &server;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  server.start();
  std::printf("qapprox_serve: listening on %s\n", opts.socket_path.c_str());
  std::fflush(stdout);
  server.wait();
  std::printf("qapprox_serve: shutting down\n");
  server.stop();
  std::printf("%s\n", server.build_stats().dump().c_str());
  g_server = nullptr;
  return 0;
}

int main(int argc, char** argv) { return qc::common::run_main(argc, argv, run); }
