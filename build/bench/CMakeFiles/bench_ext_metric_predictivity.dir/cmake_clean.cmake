file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_metric_predictivity.dir/bench_ext_metric_predictivity.cpp.o"
  "CMakeFiles/bench_ext_metric_predictivity.dir/bench_ext_metric_predictivity.cpp.o.d"
  "bench_ext_metric_predictivity"
  "bench_ext_metric_predictivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_metric_predictivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
