# Empty compiler generated dependencies file for bench_ext_metric_predictivity.
# This may be replaced when dependencies are built.
