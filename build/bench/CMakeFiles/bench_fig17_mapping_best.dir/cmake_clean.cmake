file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_mapping_best.dir/bench_fig17_mapping_best.cpp.o"
  "CMakeFiles/bench_fig17_mapping_best.dir/bench_fig17_mapping_best.cpp.o.d"
  "bench_fig17_mapping_best"
  "bench_fig17_mapping_best.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_mapping_best.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
