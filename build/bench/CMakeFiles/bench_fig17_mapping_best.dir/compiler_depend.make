# Empty compiler generated dependencies file for bench_fig17_mapping_best.
# This may be replaced when dependencies are built.
