# Empty dependencies file for bench_fig19_mapping_auto.
# This may be replaced when dependencies are built.
