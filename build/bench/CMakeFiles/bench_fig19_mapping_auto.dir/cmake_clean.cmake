file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_mapping_auto.dir/bench_fig19_mapping_auto.cpp.o"
  "CMakeFiles/bench_fig19_mapping_auto.dir/bench_fig19_mapping_auto.cpp.o.d"
  "bench_fig19_mapping_auto"
  "bench_fig19_mapping_auto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_mapping_auto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
