file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_twirling.dir/bench_ablation_twirling.cpp.o"
  "CMakeFiles/bench_ablation_twirling.dir/bench_ablation_twirling.cpp.o.d"
  "bench_ablation_twirling"
  "bench_ablation_twirling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_twirling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
