# Empty dependencies file for bench_ablation_twirling.
# This may be replaced when dependencies are built.
