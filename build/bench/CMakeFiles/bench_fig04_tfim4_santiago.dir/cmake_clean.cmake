file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_tfim4_santiago.dir/bench_fig04_tfim4_santiago.cpp.o"
  "CMakeFiles/bench_fig04_tfim4_santiago.dir/bench_fig04_tfim4_santiago.cpp.o.d"
  "bench_fig04_tfim4_santiago"
  "bench_fig04_tfim4_santiago.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_tfim4_santiago.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
