# Empty dependencies file for bench_fig04_tfim4_santiago.
# This may be replaced when dependencies are built.
