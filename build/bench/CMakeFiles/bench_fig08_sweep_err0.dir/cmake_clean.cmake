file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_sweep_err0.dir/bench_fig08_sweep_err0.cpp.o"
  "CMakeFiles/bench_fig08_sweep_err0.dir/bench_fig08_sweep_err0.cpp.o.d"
  "bench_fig08_sweep_err0"
  "bench_fig08_sweep_err0.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_sweep_err0.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
