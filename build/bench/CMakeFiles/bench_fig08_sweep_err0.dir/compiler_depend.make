# Empty compiler generated dependencies file for bench_fig08_sweep_err0.
# This may be replaced when dependencies are built.
