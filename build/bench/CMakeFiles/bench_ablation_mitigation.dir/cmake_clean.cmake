file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mitigation.dir/bench_ablation_mitigation.cpp.o"
  "CMakeFiles/bench_ablation_mitigation.dir/bench_ablation_mitigation.cpp.o.d"
  "bench_ablation_mitigation"
  "bench_ablation_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
