
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_util.cpp" "bench/CMakeFiles/bench_util.dir/bench_util.cpp.o" "gcc" "bench/CMakeFiles/bench_util.dir/bench_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/approx/CMakeFiles/qc_approx.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/qc_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/algos/CMakeFiles/qc_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/qc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/transpile/CMakeFiles/qc_transpile.dir/DependInfo.cmake"
  "/root/repo/build/src/noise/CMakeFiles/qc_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/qc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/qc_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/qc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
