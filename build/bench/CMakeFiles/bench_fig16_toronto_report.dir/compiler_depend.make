# Empty compiler generated dependencies file for bench_fig16_toronto_report.
# This may be replaced when dependencies are built.
