# Empty dependencies file for bench_fig03_tfim3_cloud.
# This may be replaced when dependencies are built.
