file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_tfim3_cloud.dir/bench_fig03_tfim3_cloud.cpp.o"
  "CMakeFiles/bench_fig03_tfim3_cloud.dir/bench_fig03_tfim3_cloud.cpp.o.d"
  "bench_fig03_tfim3_cloud"
  "bench_fig03_tfim3_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_tfim3_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
