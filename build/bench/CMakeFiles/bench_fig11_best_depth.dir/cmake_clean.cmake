file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_best_depth.dir/bench_fig11_best_depth.cpp.o"
  "CMakeFiles/bench_fig11_best_depth.dir/bench_fig11_best_depth.cpp.o.d"
  "bench_fig11_best_depth"
  "bench_fig11_best_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_best_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
