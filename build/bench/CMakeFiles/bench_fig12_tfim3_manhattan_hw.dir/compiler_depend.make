# Empty compiler generated dependencies file for bench_fig12_tfim3_manhattan_hw.
# This may be replaced when dependencies are built.
