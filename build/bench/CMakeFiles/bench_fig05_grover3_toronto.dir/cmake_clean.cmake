file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_grover3_toronto.dir/bench_fig05_grover3_toronto.cpp.o"
  "CMakeFiles/bench_fig05_grover3_toronto.dir/bench_fig05_grover3_toronto.cpp.o.d"
  "bench_fig05_grover3_toronto"
  "bench_fig05_grover3_toronto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_grover3_toronto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
