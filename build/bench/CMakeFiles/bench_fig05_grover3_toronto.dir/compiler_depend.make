# Empty compiler generated dependencies file for bench_fig05_grover3_toronto.
# This may be replaced when dependencies are built.
