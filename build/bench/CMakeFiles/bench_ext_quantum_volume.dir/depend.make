# Empty dependencies file for bench_ext_quantum_volume.
# This may be replaced when dependencies are built.
