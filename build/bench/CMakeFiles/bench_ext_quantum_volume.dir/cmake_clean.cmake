file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_quantum_volume.dir/bench_ext_quantum_volume.cpp.o"
  "CMakeFiles/bench_ext_quantum_volume.dir/bench_ext_quantum_volume.cpp.o.d"
  "bench_ext_quantum_volume"
  "bench_ext_quantum_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_quantum_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
