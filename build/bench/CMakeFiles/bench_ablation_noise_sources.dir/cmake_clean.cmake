file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_noise_sources.dir/bench_ablation_noise_sources.cpp.o"
  "CMakeFiles/bench_ablation_noise_sources.dir/bench_ablation_noise_sources.cpp.o.d"
  "bench_ablation_noise_sources"
  "bench_ablation_noise_sources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_noise_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
