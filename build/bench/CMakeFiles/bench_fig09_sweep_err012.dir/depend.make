# Empty dependencies file for bench_fig09_sweep_err012.
# This may be replaced when dependencies are built.
