file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_sweep_err012.dir/bench_fig09_sweep_err012.cpp.o"
  "CMakeFiles/bench_fig09_sweep_err012.dir/bench_fig09_sweep_err012.cpp.o.d"
  "bench_fig09_sweep_err012"
  "bench_fig09_sweep_err012.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_sweep_err012.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
