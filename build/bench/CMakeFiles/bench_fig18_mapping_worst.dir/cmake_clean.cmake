file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_mapping_worst.dir/bench_fig18_mapping_worst.cpp.o"
  "CMakeFiles/bench_fig18_mapping_worst.dir/bench_fig18_mapping_worst.cpp.o.d"
  "bench_fig18_mapping_worst"
  "bench_fig18_mapping_worst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_mapping_worst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
