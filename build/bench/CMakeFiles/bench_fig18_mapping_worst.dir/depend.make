# Empty dependencies file for bench_fig18_mapping_worst.
# This may be replaced when dependencies are built.
