# Empty dependencies file for bench_fig14_grover3_rome_hw.
# This may be replaced when dependencies are built.
