file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_grover3_rome_hw.dir/bench_fig14_grover3_rome_hw.cpp.o"
  "CMakeFiles/bench_fig14_grover3_rome_hw.dir/bench_fig14_grover3_rome_hw.cpp.o.d"
  "bench_fig14_grover3_rome_hw"
  "bench_fig14_grover3_rome_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_grover3_rome_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
