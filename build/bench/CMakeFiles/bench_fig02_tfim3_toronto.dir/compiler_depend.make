# Empty compiler generated dependencies file for bench_fig02_tfim3_toronto.
# This may be replaced when dependencies are built.
