# Empty compiler generated dependencies file for bench_ext_partition.
# This may be replaced when dependencies are built.
