file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_partition.dir/bench_ext_partition.cpp.o"
  "CMakeFiles/bench_ext_partition.dir/bench_ext_partition.cpp.o.d"
  "bench_ext_partition"
  "bench_ext_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
