# Empty dependencies file for bench_fig07_toffoli5_manhattan.
# This may be replaced when dependencies are built.
