file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_toffoli5_manhattan.dir/bench_fig07_toffoli5_manhattan.cpp.o"
  "CMakeFiles/bench_fig07_toffoli5_manhattan.dir/bench_fig07_toffoli5_manhattan.cpp.o.d"
  "bench_fig07_toffoli5_manhattan"
  "bench_fig07_toffoli5_manhattan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_toffoli5_manhattan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
