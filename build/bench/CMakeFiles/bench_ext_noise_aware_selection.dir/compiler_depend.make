# Empty compiler generated dependencies file for bench_ext_noise_aware_selection.
# This may be replaced when dependencies are built.
