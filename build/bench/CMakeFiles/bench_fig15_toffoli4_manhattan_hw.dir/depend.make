# Empty dependencies file for bench_fig15_toffoli4_manhattan_hw.
# This may be replaced when dependencies are built.
