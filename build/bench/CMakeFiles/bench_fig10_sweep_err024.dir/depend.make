# Empty dependencies file for bench_fig10_sweep_err024.
# This may be replaced when dependencies are built.
