file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_sweep_err024.dir/bench_fig10_sweep_err024.cpp.o"
  "CMakeFiles/bench_fig10_sweep_err024.dir/bench_fig10_sweep_err024.cpp.o.d"
  "bench_fig10_sweep_err024"
  "bench_fig10_sweep_err024.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_sweep_err024.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
