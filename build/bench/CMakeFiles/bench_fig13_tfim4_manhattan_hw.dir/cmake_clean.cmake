file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_tfim4_manhattan_hw.dir/bench_fig13_tfim4_manhattan_hw.cpp.o"
  "CMakeFiles/bench_fig13_tfim4_manhattan_hw.dir/bench_fig13_tfim4_manhattan_hw.cpp.o.d"
  "bench_fig13_tfim4_manhattan_hw"
  "bench_fig13_tfim4_manhattan_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_tfim4_manhattan_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
