# Empty dependencies file for bench_fig13_tfim4_manhattan_hw.
# This may be replaced when dependencies are built.
