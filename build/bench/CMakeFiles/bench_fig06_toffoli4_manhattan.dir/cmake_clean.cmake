file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_toffoli4_manhattan.dir/bench_fig06_toffoli4_manhattan.cpp.o"
  "CMakeFiles/bench_fig06_toffoli4_manhattan.dir/bench_fig06_toffoli4_manhattan.cpp.o.d"
  "bench_fig06_toffoli4_manhattan"
  "bench_fig06_toffoli4_manhattan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_toffoli4_manhattan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
