# Empty dependencies file for bench_fig06_toffoli4_manhattan.
# This may be replaced when dependencies are built.
