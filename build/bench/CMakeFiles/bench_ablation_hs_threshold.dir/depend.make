# Empty dependencies file for bench_ablation_hs_threshold.
# This may be replaced when dependencies are built.
