# Empty compiler generated dependencies file for toffoli_study.
# This may be replaced when dependencies are built.
