file(REMOVE_RECURSE
  "CMakeFiles/toffoli_study.dir/toffoli_study.cpp.o"
  "CMakeFiles/toffoli_study.dir/toffoli_study.cpp.o.d"
  "toffoli_study"
  "toffoli_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toffoli_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
