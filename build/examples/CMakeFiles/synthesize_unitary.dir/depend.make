# Empty dependencies file for synthesize_unitary.
# This may be replaced when dependencies are built.
