file(REMOVE_RECURSE
  "CMakeFiles/synthesize_unitary.dir/synthesize_unitary.cpp.o"
  "CMakeFiles/synthesize_unitary.dir/synthesize_unitary.cpp.o.d"
  "synthesize_unitary"
  "synthesize_unitary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthesize_unitary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
