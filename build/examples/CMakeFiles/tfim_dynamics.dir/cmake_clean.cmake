file(REMOVE_RECURSE
  "CMakeFiles/tfim_dynamics.dir/tfim_dynamics.cpp.o"
  "CMakeFiles/tfim_dynamics.dir/tfim_dynamics.cpp.o.d"
  "tfim_dynamics"
  "tfim_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfim_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
