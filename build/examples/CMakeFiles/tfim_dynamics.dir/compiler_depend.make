# Empty compiler generated dependencies file for tfim_dynamics.
# This may be replaced when dependencies are built.
