file(REMOVE_RECURSE
  "CMakeFiles/compress_and_polish.dir/compress_and_polish.cpp.o"
  "CMakeFiles/compress_and_polish.dir/compress_and_polish.cpp.o.d"
  "compress_and_polish"
  "compress_and_polish.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compress_and_polish.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
