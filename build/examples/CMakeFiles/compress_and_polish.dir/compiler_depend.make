# Empty compiler generated dependencies file for compress_and_polish.
# This may be replaced when dependencies are built.
