# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_noise[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_transpile[1]_include.cmake")
include("/root/repo/build/tests/test_synth[1]_include.cmake")
include("/root/repo/build/tests/test_algos[1]_include.cmake")
include("/root/repo/build/tests/test_approx[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
