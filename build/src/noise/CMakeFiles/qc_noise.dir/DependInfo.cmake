
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/noise/catalog.cpp" "src/noise/CMakeFiles/qc_noise.dir/catalog.cpp.o" "gcc" "src/noise/CMakeFiles/qc_noise.dir/catalog.cpp.o.d"
  "/root/repo/src/noise/channel.cpp" "src/noise/CMakeFiles/qc_noise.dir/channel.cpp.o" "gcc" "src/noise/CMakeFiles/qc_noise.dir/channel.cpp.o.d"
  "/root/repo/src/noise/device.cpp" "src/noise/CMakeFiles/qc_noise.dir/device.cpp.o" "gcc" "src/noise/CMakeFiles/qc_noise.dir/device.cpp.o.d"
  "/root/repo/src/noise/mitigation.cpp" "src/noise/CMakeFiles/qc_noise.dir/mitigation.cpp.o" "gcc" "src/noise/CMakeFiles/qc_noise.dir/mitigation.cpp.o.d"
  "/root/repo/src/noise/noise_model.cpp" "src/noise/CMakeFiles/qc_noise.dir/noise_model.cpp.o" "gcc" "src/noise/CMakeFiles/qc_noise.dir/noise_model.cpp.o.d"
  "/root/repo/src/noise/readout.cpp" "src/noise/CMakeFiles/qc_noise.dir/readout.cpp.o" "gcc" "src/noise/CMakeFiles/qc_noise.dir/readout.cpp.o.d"
  "/root/repo/src/noise/topology.cpp" "src/noise/CMakeFiles/qc_noise.dir/topology.cpp.o" "gcc" "src/noise/CMakeFiles/qc_noise.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/qc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/qc_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/qc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
