file(REMOVE_RECURSE
  "CMakeFiles/qc_noise.dir/catalog.cpp.o"
  "CMakeFiles/qc_noise.dir/catalog.cpp.o.d"
  "CMakeFiles/qc_noise.dir/channel.cpp.o"
  "CMakeFiles/qc_noise.dir/channel.cpp.o.d"
  "CMakeFiles/qc_noise.dir/device.cpp.o"
  "CMakeFiles/qc_noise.dir/device.cpp.o.d"
  "CMakeFiles/qc_noise.dir/mitigation.cpp.o"
  "CMakeFiles/qc_noise.dir/mitigation.cpp.o.d"
  "CMakeFiles/qc_noise.dir/noise_model.cpp.o"
  "CMakeFiles/qc_noise.dir/noise_model.cpp.o.d"
  "CMakeFiles/qc_noise.dir/readout.cpp.o"
  "CMakeFiles/qc_noise.dir/readout.cpp.o.d"
  "CMakeFiles/qc_noise.dir/topology.cpp.o"
  "CMakeFiles/qc_noise.dir/topology.cpp.o.d"
  "libqc_noise.a"
  "libqc_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qc_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
