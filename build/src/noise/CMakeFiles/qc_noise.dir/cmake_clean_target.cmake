file(REMOVE_RECURSE
  "libqc_noise.a"
)
