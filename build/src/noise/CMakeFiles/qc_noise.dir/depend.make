# Empty dependencies file for qc_noise.
# This may be replaced when dependencies are built.
