file(REMOVE_RECURSE
  "libqc_ir.a"
)
