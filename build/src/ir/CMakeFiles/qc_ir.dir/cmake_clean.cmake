file(REMOVE_RECURSE
  "CMakeFiles/qc_ir.dir/circuit.cpp.o"
  "CMakeFiles/qc_ir.dir/circuit.cpp.o.d"
  "CMakeFiles/qc_ir.dir/dag.cpp.o"
  "CMakeFiles/qc_ir.dir/dag.cpp.o.d"
  "CMakeFiles/qc_ir.dir/gate.cpp.o"
  "CMakeFiles/qc_ir.dir/gate.cpp.o.d"
  "CMakeFiles/qc_ir.dir/qasm.cpp.o"
  "CMakeFiles/qc_ir.dir/qasm.cpp.o.d"
  "libqc_ir.a"
  "libqc_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qc_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
