# Empty compiler generated dependencies file for qc_ir.
# This may be replaced when dependencies are built.
