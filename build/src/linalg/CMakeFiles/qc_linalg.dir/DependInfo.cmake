
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/embed.cpp" "src/linalg/CMakeFiles/qc_linalg.dir/embed.cpp.o" "gcc" "src/linalg/CMakeFiles/qc_linalg.dir/embed.cpp.o.d"
  "/root/repo/src/linalg/expm.cpp" "src/linalg/CMakeFiles/qc_linalg.dir/expm.cpp.o" "gcc" "src/linalg/CMakeFiles/qc_linalg.dir/expm.cpp.o.d"
  "/root/repo/src/linalg/factories.cpp" "src/linalg/CMakeFiles/qc_linalg.dir/factories.cpp.o" "gcc" "src/linalg/CMakeFiles/qc_linalg.dir/factories.cpp.o.d"
  "/root/repo/src/linalg/matrix.cpp" "src/linalg/CMakeFiles/qc_linalg.dir/matrix.cpp.o" "gcc" "src/linalg/CMakeFiles/qc_linalg.dir/matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
