file(REMOVE_RECURSE
  "CMakeFiles/qc_linalg.dir/embed.cpp.o"
  "CMakeFiles/qc_linalg.dir/embed.cpp.o.d"
  "CMakeFiles/qc_linalg.dir/expm.cpp.o"
  "CMakeFiles/qc_linalg.dir/expm.cpp.o.d"
  "CMakeFiles/qc_linalg.dir/factories.cpp.o"
  "CMakeFiles/qc_linalg.dir/factories.cpp.o.d"
  "CMakeFiles/qc_linalg.dir/matrix.cpp.o"
  "CMakeFiles/qc_linalg.dir/matrix.cpp.o.d"
  "libqc_linalg.a"
  "libqc_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qc_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
