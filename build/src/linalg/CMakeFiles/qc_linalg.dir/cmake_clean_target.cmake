file(REMOVE_RECURSE
  "libqc_linalg.a"
)
