# Empty dependencies file for qc_linalg.
# This may be replaced when dependencies are built.
