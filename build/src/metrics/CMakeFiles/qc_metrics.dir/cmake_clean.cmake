file(REMOVE_RECURSE
  "CMakeFiles/qc_metrics.dir/distribution.cpp.o"
  "CMakeFiles/qc_metrics.dir/distribution.cpp.o.d"
  "CMakeFiles/qc_metrics.dir/process.cpp.o"
  "CMakeFiles/qc_metrics.dir/process.cpp.o.d"
  "libqc_metrics.a"
  "libqc_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qc_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
