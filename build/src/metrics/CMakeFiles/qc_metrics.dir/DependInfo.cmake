
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/distribution.cpp" "src/metrics/CMakeFiles/qc_metrics.dir/distribution.cpp.o" "gcc" "src/metrics/CMakeFiles/qc_metrics.dir/distribution.cpp.o.d"
  "/root/repo/src/metrics/process.cpp" "src/metrics/CMakeFiles/qc_metrics.dir/process.cpp.o" "gcc" "src/metrics/CMakeFiles/qc_metrics.dir/process.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/qc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
