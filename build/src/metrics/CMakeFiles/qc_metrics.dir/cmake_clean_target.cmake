file(REMOVE_RECURSE
  "libqc_metrics.a"
)
