# Empty dependencies file for qc_metrics.
# This may be replaced when dependencies are built.
