
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transpile/decompose.cpp" "src/transpile/CMakeFiles/qc_transpile.dir/decompose.cpp.o" "gcc" "src/transpile/CMakeFiles/qc_transpile.dir/decompose.cpp.o.d"
  "/root/repo/src/transpile/euler.cpp" "src/transpile/CMakeFiles/qc_transpile.dir/euler.cpp.o" "gcc" "src/transpile/CMakeFiles/qc_transpile.dir/euler.cpp.o.d"
  "/root/repo/src/transpile/layout.cpp" "src/transpile/CMakeFiles/qc_transpile.dir/layout.cpp.o" "gcc" "src/transpile/CMakeFiles/qc_transpile.dir/layout.cpp.o.d"
  "/root/repo/src/transpile/peephole.cpp" "src/transpile/CMakeFiles/qc_transpile.dir/peephole.cpp.o" "gcc" "src/transpile/CMakeFiles/qc_transpile.dir/peephole.cpp.o.d"
  "/root/repo/src/transpile/pipeline.cpp" "src/transpile/CMakeFiles/qc_transpile.dir/pipeline.cpp.o" "gcc" "src/transpile/CMakeFiles/qc_transpile.dir/pipeline.cpp.o.d"
  "/root/repo/src/transpile/routing.cpp" "src/transpile/CMakeFiles/qc_transpile.dir/routing.cpp.o" "gcc" "src/transpile/CMakeFiles/qc_transpile.dir/routing.cpp.o.d"
  "/root/repo/src/transpile/twirling.cpp" "src/transpile/CMakeFiles/qc_transpile.dir/twirling.cpp.o" "gcc" "src/transpile/CMakeFiles/qc_transpile.dir/twirling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/qc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/noise/CMakeFiles/qc_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/qc_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/qc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
