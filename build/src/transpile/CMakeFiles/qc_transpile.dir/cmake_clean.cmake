file(REMOVE_RECURSE
  "CMakeFiles/qc_transpile.dir/decompose.cpp.o"
  "CMakeFiles/qc_transpile.dir/decompose.cpp.o.d"
  "CMakeFiles/qc_transpile.dir/euler.cpp.o"
  "CMakeFiles/qc_transpile.dir/euler.cpp.o.d"
  "CMakeFiles/qc_transpile.dir/layout.cpp.o"
  "CMakeFiles/qc_transpile.dir/layout.cpp.o.d"
  "CMakeFiles/qc_transpile.dir/peephole.cpp.o"
  "CMakeFiles/qc_transpile.dir/peephole.cpp.o.d"
  "CMakeFiles/qc_transpile.dir/pipeline.cpp.o"
  "CMakeFiles/qc_transpile.dir/pipeline.cpp.o.d"
  "CMakeFiles/qc_transpile.dir/routing.cpp.o"
  "CMakeFiles/qc_transpile.dir/routing.cpp.o.d"
  "CMakeFiles/qc_transpile.dir/twirling.cpp.o"
  "CMakeFiles/qc_transpile.dir/twirling.cpp.o.d"
  "libqc_transpile.a"
  "libqc_transpile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qc_transpile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
