file(REMOVE_RECURSE
  "libqc_transpile.a"
)
