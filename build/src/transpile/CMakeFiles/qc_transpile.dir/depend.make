# Empty dependencies file for qc_transpile.
# This may be replaced when dependencies are built.
