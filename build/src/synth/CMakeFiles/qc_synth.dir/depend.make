# Empty dependencies file for qc_synth.
# This may be replaced when dependencies are built.
