file(REMOVE_RECURSE
  "libqc_synth.a"
)
