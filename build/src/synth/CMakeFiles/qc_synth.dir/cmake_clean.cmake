file(REMOVE_RECURSE
  "CMakeFiles/qc_synth.dir/cost.cpp.o"
  "CMakeFiles/qc_synth.dir/cost.cpp.o.d"
  "CMakeFiles/qc_synth.dir/invariants.cpp.o"
  "CMakeFiles/qc_synth.dir/invariants.cpp.o.d"
  "CMakeFiles/qc_synth.dir/optimize.cpp.o"
  "CMakeFiles/qc_synth.dir/optimize.cpp.o.d"
  "CMakeFiles/qc_synth.dir/partition.cpp.o"
  "CMakeFiles/qc_synth.dir/partition.cpp.o.d"
  "CMakeFiles/qc_synth.dir/qfactor.cpp.o"
  "CMakeFiles/qc_synth.dir/qfactor.cpp.o.d"
  "CMakeFiles/qc_synth.dir/qfast.cpp.o"
  "CMakeFiles/qc_synth.dir/qfast.cpp.o.d"
  "CMakeFiles/qc_synth.dir/qsearch.cpp.o"
  "CMakeFiles/qc_synth.dir/qsearch.cpp.o.d"
  "CMakeFiles/qc_synth.dir/reducer.cpp.o"
  "CMakeFiles/qc_synth.dir/reducer.cpp.o.d"
  "CMakeFiles/qc_synth.dir/template.cpp.o"
  "CMakeFiles/qc_synth.dir/template.cpp.o.d"
  "libqc_synth.a"
  "libqc_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qc_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
