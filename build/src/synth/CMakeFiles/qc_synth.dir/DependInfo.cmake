
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/cost.cpp" "src/synth/CMakeFiles/qc_synth.dir/cost.cpp.o" "gcc" "src/synth/CMakeFiles/qc_synth.dir/cost.cpp.o.d"
  "/root/repo/src/synth/invariants.cpp" "src/synth/CMakeFiles/qc_synth.dir/invariants.cpp.o" "gcc" "src/synth/CMakeFiles/qc_synth.dir/invariants.cpp.o.d"
  "/root/repo/src/synth/optimize.cpp" "src/synth/CMakeFiles/qc_synth.dir/optimize.cpp.o" "gcc" "src/synth/CMakeFiles/qc_synth.dir/optimize.cpp.o.d"
  "/root/repo/src/synth/partition.cpp" "src/synth/CMakeFiles/qc_synth.dir/partition.cpp.o" "gcc" "src/synth/CMakeFiles/qc_synth.dir/partition.cpp.o.d"
  "/root/repo/src/synth/qfactor.cpp" "src/synth/CMakeFiles/qc_synth.dir/qfactor.cpp.o" "gcc" "src/synth/CMakeFiles/qc_synth.dir/qfactor.cpp.o.d"
  "/root/repo/src/synth/qfast.cpp" "src/synth/CMakeFiles/qc_synth.dir/qfast.cpp.o" "gcc" "src/synth/CMakeFiles/qc_synth.dir/qfast.cpp.o.d"
  "/root/repo/src/synth/qsearch.cpp" "src/synth/CMakeFiles/qc_synth.dir/qsearch.cpp.o" "gcc" "src/synth/CMakeFiles/qc_synth.dir/qsearch.cpp.o.d"
  "/root/repo/src/synth/reducer.cpp" "src/synth/CMakeFiles/qc_synth.dir/reducer.cpp.o" "gcc" "src/synth/CMakeFiles/qc_synth.dir/reducer.cpp.o.d"
  "/root/repo/src/synth/template.cpp" "src/synth/CMakeFiles/qc_synth.dir/template.cpp.o" "gcc" "src/synth/CMakeFiles/qc_synth.dir/template.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/qc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/qc_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/noise/CMakeFiles/qc_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/transpile/CMakeFiles/qc_transpile.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/qc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
