file(REMOVE_RECURSE
  "libqc_sim.a"
)
