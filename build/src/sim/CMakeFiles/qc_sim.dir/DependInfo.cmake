
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/backend.cpp" "src/sim/CMakeFiles/qc_sim.dir/backend.cpp.o" "gcc" "src/sim/CMakeFiles/qc_sim.dir/backend.cpp.o.d"
  "/root/repo/src/sim/density_matrix.cpp" "src/sim/CMakeFiles/qc_sim.dir/density_matrix.cpp.o" "gcc" "src/sim/CMakeFiles/qc_sim.dir/density_matrix.cpp.o.d"
  "/root/repo/src/sim/observables.cpp" "src/sim/CMakeFiles/qc_sim.dir/observables.cpp.o" "gcc" "src/sim/CMakeFiles/qc_sim.dir/observables.cpp.o.d"
  "/root/repo/src/sim/statevector.cpp" "src/sim/CMakeFiles/qc_sim.dir/statevector.cpp.o" "gcc" "src/sim/CMakeFiles/qc_sim.dir/statevector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/qc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/noise/CMakeFiles/qc_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/qc_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/qc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
