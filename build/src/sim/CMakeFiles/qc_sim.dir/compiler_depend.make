# Empty compiler generated dependencies file for qc_sim.
# This may be replaced when dependencies are built.
