file(REMOVE_RECURSE
  "CMakeFiles/qc_sim.dir/backend.cpp.o"
  "CMakeFiles/qc_sim.dir/backend.cpp.o.d"
  "CMakeFiles/qc_sim.dir/density_matrix.cpp.o"
  "CMakeFiles/qc_sim.dir/density_matrix.cpp.o.d"
  "CMakeFiles/qc_sim.dir/observables.cpp.o"
  "CMakeFiles/qc_sim.dir/observables.cpp.o.d"
  "CMakeFiles/qc_sim.dir/statevector.cpp.o"
  "CMakeFiles/qc_sim.dir/statevector.cpp.o.d"
  "libqc_sim.a"
  "libqc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
