# Empty dependencies file for qc_approx.
# This may be replaced when dependencies are built.
