
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/approx/archive.cpp" "src/approx/CMakeFiles/qc_approx.dir/archive.cpp.o" "gcc" "src/approx/CMakeFiles/qc_approx.dir/archive.cpp.o.d"
  "/root/repo/src/approx/experiment.cpp" "src/approx/CMakeFiles/qc_approx.dir/experiment.cpp.o" "gcc" "src/approx/CMakeFiles/qc_approx.dir/experiment.cpp.o.d"
  "/root/repo/src/approx/mapping_study.cpp" "src/approx/CMakeFiles/qc_approx.dir/mapping_study.cpp.o" "gcc" "src/approx/CMakeFiles/qc_approx.dir/mapping_study.cpp.o.d"
  "/root/repo/src/approx/selection.cpp" "src/approx/CMakeFiles/qc_approx.dir/selection.cpp.o" "gcc" "src/approx/CMakeFiles/qc_approx.dir/selection.cpp.o.d"
  "/root/repo/src/approx/sweep.cpp" "src/approx/CMakeFiles/qc_approx.dir/sweep.cpp.o" "gcc" "src/approx/CMakeFiles/qc_approx.dir/sweep.cpp.o.d"
  "/root/repo/src/approx/tfim_study.cpp" "src/approx/CMakeFiles/qc_approx.dir/tfim_study.cpp.o" "gcc" "src/approx/CMakeFiles/qc_approx.dir/tfim_study.cpp.o.d"
  "/root/repo/src/approx/workflow.cpp" "src/approx/CMakeFiles/qc_approx.dir/workflow.cpp.o" "gcc" "src/approx/CMakeFiles/qc_approx.dir/workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/synth/CMakeFiles/qc_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/qc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/algos/CMakeFiles/qc_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/transpile/CMakeFiles/qc_transpile.dir/DependInfo.cmake"
  "/root/repo/build/src/noise/CMakeFiles/qc_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/qc_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/qc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/qc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
