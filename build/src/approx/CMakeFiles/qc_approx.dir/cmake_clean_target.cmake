file(REMOVE_RECURSE
  "libqc_approx.a"
)
