file(REMOVE_RECURSE
  "CMakeFiles/qc_approx.dir/archive.cpp.o"
  "CMakeFiles/qc_approx.dir/archive.cpp.o.d"
  "CMakeFiles/qc_approx.dir/experiment.cpp.o"
  "CMakeFiles/qc_approx.dir/experiment.cpp.o.d"
  "CMakeFiles/qc_approx.dir/mapping_study.cpp.o"
  "CMakeFiles/qc_approx.dir/mapping_study.cpp.o.d"
  "CMakeFiles/qc_approx.dir/selection.cpp.o"
  "CMakeFiles/qc_approx.dir/selection.cpp.o.d"
  "CMakeFiles/qc_approx.dir/sweep.cpp.o"
  "CMakeFiles/qc_approx.dir/sweep.cpp.o.d"
  "CMakeFiles/qc_approx.dir/tfim_study.cpp.o"
  "CMakeFiles/qc_approx.dir/tfim_study.cpp.o.d"
  "CMakeFiles/qc_approx.dir/workflow.cpp.o"
  "CMakeFiles/qc_approx.dir/workflow.cpp.o.d"
  "libqc_approx.a"
  "libqc_approx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qc_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
