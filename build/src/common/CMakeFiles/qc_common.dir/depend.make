# Empty dependencies file for qc_common.
# This may be replaced when dependencies are built.
