file(REMOVE_RECURSE
  "libqc_common.a"
)
