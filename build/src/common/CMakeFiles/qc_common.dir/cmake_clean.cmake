file(REMOVE_RECURSE
  "CMakeFiles/qc_common.dir/cli.cpp.o"
  "CMakeFiles/qc_common.dir/cli.cpp.o.d"
  "CMakeFiles/qc_common.dir/error.cpp.o"
  "CMakeFiles/qc_common.dir/error.cpp.o.d"
  "CMakeFiles/qc_common.dir/rng.cpp.o"
  "CMakeFiles/qc_common.dir/rng.cpp.o.d"
  "CMakeFiles/qc_common.dir/strings.cpp.o"
  "CMakeFiles/qc_common.dir/strings.cpp.o.d"
  "CMakeFiles/qc_common.dir/table.cpp.o"
  "CMakeFiles/qc_common.dir/table.cpp.o.d"
  "CMakeFiles/qc_common.dir/thread_pool.cpp.o"
  "CMakeFiles/qc_common.dir/thread_pool.cpp.o.d"
  "libqc_common.a"
  "libqc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
