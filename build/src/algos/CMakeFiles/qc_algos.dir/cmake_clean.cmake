file(REMOVE_RECURSE
  "CMakeFiles/qc_algos.dir/grover.cpp.o"
  "CMakeFiles/qc_algos.dir/grover.cpp.o.d"
  "CMakeFiles/qc_algos.dir/mct.cpp.o"
  "CMakeFiles/qc_algos.dir/mct.cpp.o.d"
  "CMakeFiles/qc_algos.dir/qv.cpp.o"
  "CMakeFiles/qc_algos.dir/qv.cpp.o.d"
  "CMakeFiles/qc_algos.dir/tfim.cpp.o"
  "CMakeFiles/qc_algos.dir/tfim.cpp.o.d"
  "libqc_algos.a"
  "libqc_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qc_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
